"""Cross-scenario matrix runner: ``(scenario x controller x perturbation)``.

The ROADMAP's scenario-diversity goal is operationally a *matrix*: every
registered scenario crossed with every controller of interest and every
perturbation regime, each cell a Monte-Carlo evaluation on the batched
rollout engine, plus one verification job per trained student fanned across
the :class:`~repro.verification.sweep.VerificationSweep` process pool.
:func:`run_scenario_matrix` expands and runs that matrix and returns a
:class:`ScenarioMatrixReport` whose ``to_csv`` emits one flat row per cell
-- the cross-scenario CSV the CLI's ``repro scenarios run`` writes.

Per-scenario budgets come from each spec's ``train_budget`` /
``verify_budget`` hints; ``budget_scale`` shrinks the integer training
knobs uniformly (the ``make scenario-smoke`` target runs the whole catalog
at a tiny scale this way).

With a :class:`~repro.experiments.store.RunStore` (``store=``/``run_dir=``)
the matrix becomes an *incremental* workload: every stage -- the kappa*
training, each evaluation cell, each verification job -- is keyed by the
digest of its resolved config and flushed to the store as soon as it
completes, so an interrupted sweep rerun with ``resume=True`` executes
only the missing cells and a fully warmed store answers the whole matrix
from disk.  Store-backed rows are deterministic (wall-clock timings stay
in the store's entry metadata, not in the rows), which is what makes the
resumed CSV byte-identical to an uninterrupted run.

Sharding
--------
The same digest-keyed store doubles as a distributed coordination
substrate.  :func:`plan_matrix_cells` expands the grid into a canonical
cell order, a :class:`ShardSpec` (``"i/N"``) assigns every position to
exactly one of N shards round-robin, and each shard runs
``run_scenario_matrix(..., shard=...)`` against the *shared* run
directory -- on one host via :func:`run_sharded_matrix` worker processes,
or across hosts via ``repro scenarios run --shard i/N``.  Shards
coordinate through a :class:`~repro.experiments.store.ClaimBoard`: each
in-flight cell is claimed atomically, heartbeats keep the claim alive,
and idle shards *steal* unfinished foreign cells (including claims whose
worker died, once the lease expires).  A shard-level wall-clock budget
mirrors the sweep's ``resource-exhausted`` semantics: on exhaustion the
remaining cells are simply left unclaimed for other shards.

:func:`merge_matrix_run` then replays the whole grid from the store
(``offline=True``: nothing may execute) and reassembles the rows in
canonical order -- producing a CSV byte-identical to a single-process run,
regardless of shard count, completion order or how often workers died.

Telemetry
---------
Store-backed runs additionally append a typed event log under
``<run_dir>/events/`` (see :mod:`repro.telemetry`): every counter
increment in the report pairs with exactly one ``cell-finished`` /
``cell-cached`` / ``cell-stolen`` event, plus run lifecycle, heartbeat,
stage-timing and sweep-job events -- which is what ``repro runs watch``
tails live and ``repro runs stats`` aggregates.  All wall-clock timings
live *only* in that log; store entries and rows stay deterministic, so
enabling telemetry cannot perturb the byte-identical CSV guarantee.
Offline replays (the merge) execute nothing and therefore emit nothing.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.cocktail import CocktailPipeline
from repro.core.config import CocktailConfig
from repro.metrics.robustness import evaluate_robustness
from repro.scenarios.registry import list_scenarios, resolve_scenario
from repro.telemetry.emitter import NullTelemetryEmitter, TelemetryEmitter
from repro.telemetry.events import (
    CellCached,
    CellFinished,
    CellStarted,
    CellStolen,
    RunFinished,
    RunStarted,
    StageTiming,
    SweepJobFinished,
)
from repro.utils.seeding import set_global_seed

#: Non-deterministic keys stripped from store-backed verification rows.
_TIMING_KEYS = ("total_seconds", "reach_seconds", "invariant_seconds")

#: The training-budget keys that scale with ``budget_scale``.
_SCALABLE_HINTS = ("mixing_epochs", "mixing_steps", "distill_epochs", "dataset_size", "eval_samples")

#: Manifest file a sharded run writes into its run directory so that
#: ``repro runs merge`` can replay the exact same grid.
MANIFEST_FILE = "matrix.json"

#: Poll period while waiting for another shard to publish a dependency.
_WAIT_POLL_SECONDS = 0.05


def scale_budget_hints(hints: Mapping[str, object], factor: float) -> Dict[str, object]:
    """Uniformly shrink/grow the integer budget knobs (floored at 1)."""

    scaled = dict(hints or {})
    if factor != 1.0:
        for key in _SCALABLE_HINTS:
            if key in scaled:
                scaled[key] = max(1, int(round(float(scaled[key]) * factor)))
    return scaled


@dataclass(frozen=True)
class ShardSpec:
    """One shard of the matrix grid: 1-based ``index`` out of ``count``.

    Ownership is round-robin over the canonical cell order
    (:func:`plan_matrix_cells`), which makes the assignment a provable
    partition: for any grid size, every position is owned by exactly one
    shard, shards are pairwise disjoint, their union is exhaustive, and
    shard sizes differ by at most one cell.
    """

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"bad shard spec {self.index}/{self.count}: need at least one shard")
        if not 1 <= self.index <= self.count:
            raise ValueError(
                f"bad shard spec {self.index}/{self.count}: index must be in 1..{self.count}"
            )

    @classmethod
    def parse(cls, text: str) -> "ShardSpec":
        """Parse an ``"i/N"`` spec; raises ValueError with the reason."""

        pieces = str(text).split("/")
        if len(pieces) != 2:
            raise ValueError(f"bad shard spec {text!r}: expected I/N (e.g. 2/4)")
        try:
            index, count = int(pieces[0]), int(pieces[1])
        except ValueError:
            raise ValueError(f"bad shard spec {text!r}: I and N must be integers")
        return cls(index=index, count=count)

    def owns(self, position: int) -> bool:
        """Whether the canonical cell at ``position`` belongs to this shard."""

        return position % self.count == self.index - 1

    def __str__(self) -> str:
        return f"{self.index}/{self.count}"


@dataclass(frozen=True)
class MatrixCell:
    """One unit of matrix work in the canonical (shardable) cell order."""

    kind: str  # "evaluate" | "verify"
    scenario: str  # requested spelling; variants preserved
    controller: str
    perturbation: Optional[str] = None


def _enumerate_cells(
    scenario_controllers: Sequence[Tuple[str, Sequence[str]]],
    perturbations: Sequence[str],
    include_verify: bool,
) -> List[MatrixCell]:
    """The canonical cell order: all evaluate cells, then one verify/scenario.

    This mirrors the row order of a single-process run exactly, so a merge
    that loads cells in this order reproduces the single-process CSV.
    """

    cells: List[MatrixCell] = []
    for scenario, controllers in scenario_controllers:
        for controller in controllers:
            for perturbation in perturbations:
                cells.append(MatrixCell("evaluate", scenario, controller, perturbation))
    if include_verify:
        for scenario, _ in scenario_controllers:
            cells.append(MatrixCell("verify", scenario, "kappa_star"))
    return cells


def plan_matrix_cells(
    scenarios: Optional[Sequence[str]] = None,
    perturbations: Sequence[str] = ("none", "attack", "noise"),
    train: bool = True,
    verify: bool = True,
) -> List[MatrixCell]:
    """Expand the grid into its canonical cell order without running it.

    The list index of each cell is its shard position
    (:meth:`ShardSpec.owns`); the executor enumerates identically, so the
    plan is the shard protocol's single source of truth.
    """

    names = list(scenarios) if scenarios is not None else list_scenarios()
    scenario_controllers = []
    for name in names:
        spec, overrides = resolve_scenario(name)
        system = spec.make_system(**overrides)
        controllers = [f"kappa{i}" for i in range(1, len(spec.make_experts(system)) + 1)]
        if train:
            controllers.append("kappa_star")
        scenario_controllers.append((name, controllers))
    return _enumerate_cells(scenario_controllers, perturbations, include_verify=train and verify)


class MatrixIncompleteError(RuntimeError):
    """An offline merge found cells the run store does not hold yet."""

    def __init__(self, missing: Sequence[str]):
        self.missing = list(missing)
        preview = ", ".join(self.missing[:8])
        if len(self.missing) > 8:
            preview += ", ..."
        super().__init__(
            f"run store is missing {len(self.missing)} cell(s): {preview} -- "
            "run the remaining shards (or rerun an interrupted shard with --resume) "
            "before merging"
        )


@dataclass
class ScenarioMatrixReport:
    """Flat per-cell records of one matrix run."""

    rows: List[Dict] = field(default_factory=list)
    scenarios: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: Stage executions vs run-store replays (both stay 0 without a store).
    cells_computed: int = 0
    cells_cached: int = 0
    #: Sharded runs only: foreign cells this shard picked up, and owned
    #: cells left to another live claimant.
    cells_stolen: int = 0
    cells_skipped: int = 0
    #: ``"resource-exhausted"`` when a shard wall-clock budget expired.
    status: str = "ok"
    shard: Optional[str] = None

    @property
    def num_cells(self) -> int:
        return len(self.rows)

    @property
    def num_unsafe_free(self) -> int:
        """Evaluation cells with a perfect safe rate."""

        return sum(1 for row in self.rows if row.get("safe_rate") == 1.0)

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write one row per matrix cell (union of all keys) to ``path``."""

        import csv

        keys: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in keys:
                    keys.append(key)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=keys, restval="")
            writer.writeheader()
            writer.writerows(self.rows)
        return path

    def table(self) -> str:
        """Aligned text table of the matrix (one line per cell + a footer)."""

        header = (
            f"{'scenario':12s} {'controller':12s} {'cell':10s} {'perturb':8s} "
            f"{'Sr':>7s} {'energy':>9s} {'verdict':>12s} {'seconds':>8s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            safe_rate = row.get("safe_rate")
            energy = row.get("mean_energy")
            verdict = row.get("reach_status", row.get("status", "-"))
            lines.append(
                f"{row['scenario']:12s} {row['controller']:12s} {row['cell']:10s} "
                f"{str(row.get('perturbation', '-')):8s} "
                f"{(f'{100 * safe_rate:6.1f}%' if safe_rate is not None else '      -'):>7s} "
                f"{(f'{energy:9.2f}' if energy is not None else '        -'):>9s} "
                f"{str(verdict):>12s} {row.get('seconds', 0.0):8.2f}"
            )
        lines.append(
            f"{self.num_cells} cells over {len(self.scenarios)} scenario(s) | "
            f"{self.elapsed_seconds:.2f}s wall clock"
        )
        return "\n".join(lines)


def _controller_identity(name: str, controller) -> Dict[str, object]:
    """What makes an evaluation cell's controller unique for digesting.

    Trained students are identified by their weight digest (so a retrain
    with different weights can never replay a stale cell); analytic experts
    are a pure function of the plant and their position, so their name
    suffices.
    """

    network = getattr(controller, "network", None)
    if network is not None:
        from repro.nn.lipschitz import network_weights_digest

        return {"kind": "network", "weights": network_weights_digest(network)}
    return {"kind": "analytic", "name": name}


# -- manifest ----------------------------------------------------------


def write_matrix_manifest(root: Union[str, Path], manifest: Mapping) -> Path:
    """Atomically record the matrix identity in ``root``; conflicts error.

    Every shard of one grid writes the same manifest, so the first wins
    and the rest verify; a *different* manifest means two incompatible
    matrices were pointed at one run directory, which would merge into
    nonsense -- that is rejected loudly.
    """

    from repro.experiments.digest import canonicalize

    root = Path(root)
    canonical = canonicalize(dict(manifest))
    path = root / MANIFEST_FILE
    if path.exists():
        with path.open() as handle:
            existing = json.load(handle)
        if existing != canonical:
            raise ValueError(
                f"{path} already describes a different matrix; use a fresh --run-dir "
                "(or delete the manifest) instead of mixing grids in one store"
            )
        return path
    root.mkdir(parents=True, exist_ok=True)
    staging = path.with_name(f".tmp-{MANIFEST_FILE}-{os.getpid()}")
    with staging.open("w") as handle:
        json.dump(canonical, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(staging, path)
    return path


def read_matrix_manifest(root: Union[str, Path]) -> Dict:
    """Load the manifest a sharded run left in ``root`` (FileNotFoundError)."""

    with (Path(root) / MANIFEST_FILE).open() as handle:
        return json.load(handle)


# -- execution ---------------------------------------------------------


@dataclass
class _ScenarioContext:
    """Resolved per-scenario state shared by planning and execution."""

    name: str
    spec: object
    overrides: Dict
    params: Dict
    system: object
    experts: Dict[str, object]
    controller_names: List[str]
    student: Optional[object] = None


class _MatrixExecution:
    """One ``run_scenario_matrix`` invocation (kept in a class for state)."""

    def __init__(self, **kwargs):
        self.__dict__.update(kwargs)
        self.report = ScenarioMatrixReport(
            scenarios=list(self.names), shard=str(self.shard) if self.shard else None
        )
        self.missing: List[str] = []
        self.start = time.perf_counter()
        self.deadline = (
            None if self.shard_time_budget is None else self.start + float(self.shard_time_budget)
        )

    # -- helpers -------------------------------------------------------
    def _out_of_time(self) -> bool:
        if self.deadline is not None and time.perf_counter() > self.deadline:
            self.report.status = "resource-exhausted"
            return True
        return False

    def _contexts(self) -> List[_ScenarioContext]:
        contexts = []
        for name in self.names:
            spec, overrides = resolve_scenario(name)
            params = dict(spec.default_params)
            params.update(overrides)
            system = spec.make_system(**overrides)
            experts = {
                f"kappa{index}": expert
                for index, expert in enumerate(spec.make_experts(system), start=1)
            }
            controller_names = list(experts)
            if self.train:
                controller_names.append("kappa_star")
            contexts.append(
                _ScenarioContext(
                    name=name,
                    spec=spec,
                    overrides=dict(overrides),
                    params=params,
                    system=system,
                    experts=experts,
                    controller_names=controller_names,
                )
            )
        return contexts

    def _controller(self, ctx: _ScenarioContext, name: str):
        return ctx.student if name == "kappa_star" else ctx.experts[name]

    # -- student (kappa_star) ------------------------------------------
    def _train_key(self, ctx: _ScenarioContext, config: CocktailConfig):
        # direct_baseline is part of the identity: the CLI's train command
        # produces kappa_d + record.json under the same budgets, and must
        # never restore a matrix entry without them.
        return self.store.key(
            "train",
            {
                "system": ctx.spec.name,
                "params": ctx.params,
                "cocktail": config,
                "seed": self.seed,
                "direct_baseline": False,
            },
        )

    def _train_config(self, ctx: _ScenarioContext) -> Tuple[CocktailConfig, Dict]:
        hints = scale_budget_hints(ctx.spec.train_budget, self.budget_scale)
        hints.update(self.train_overrides or {})
        return CocktailConfig.from_budget_hints(hints, seed=self.seed), hints

    def _train_student(self, ctx: _ScenarioContext, config: CocktailConfig, hints: Dict):
        self.say(
            f"[{ctx.name}] training kappa_star ({hints.get('mixing_epochs', '?')} mixing epochs)"
        )
        set_global_seed(self.seed)
        result = CocktailPipeline(ctx.system, list(ctx.experts.values()), config).run(
            include_direct_baseline=False
        )
        return result

    def _ensure_student(self, ctx: _ScenarioContext, wait: bool = True) -> bool:
        """Make ``ctx.student`` available; False when it cannot be (yet).

        Store-backed runs key the training stage like every other cell:
        present entries restore the network, missing ones train it.  When
        shards coordinate through claims, only one shard trains a given
        scenario while the others wait for the publish (or take over the
        claim if the trainer dies); ``wait=False`` -- the stealing pass --
        moves on instead of waiting.
        """

        if not self.train or ctx.student is not None:
            return True
        config, hints = self._train_config(ctx)
        if self.store is None:
            ctx.student = self._train_student(ctx, config, hints).student
            return True

        from repro.experts.base import NeuralController

        key = self._train_key(ctx, config)
        while True:
            if self.reuse and self.store.contains(key):
                network = self.store.load_network(key, "kappa_star")
                ctx.student = NeuralController(network, name="kappa_star")
                self.store.hits += 1
                self.report.cells_cached += 1
                self.tele.emit(CellCached, scenario=ctx.name, controller="kappa_star", cell="train")
                self.say(f"[{ctx.name}] kappa_star restored from the run store")
                return True
            if self.offline:
                self.missing.append(f"train/{key.digest[:16]} ({ctx.name})")
                return False
            if self.claims is None or self.claims.acquire(key):
                try:
                    if (
                        self.claims is not None
                        and self.reuse
                        and self.store.contains(key)
                    ):
                        continue  # published while we acquired; restore above
                    hold = self.claims.hold(key) if self.claims is not None else _null_context()
                    with hold:
                        self.tele.emit(
                            CellStarted, scenario=ctx.name, controller="kappa_star", cell="train"
                        )
                        train_start = time.perf_counter()
                        result = self._train_student(ctx, config, hints)
                        self.store.save(
                            key,
                            {
                                "experts": [expert.name for expert in result.experts],
                                "dataset_size": len(result.dataset),
                            },
                            networks={"kappa_star": result.student.network},
                        )
                    self.store.misses += 1
                    self.report.cells_computed += 1
                    for stage, stage_secs in result.stage_seconds.items():
                        self.tele.emit(
                            StageTiming, scenario=ctx.name, stage=stage, seconds=stage_secs
                        )
                    self.tele.emit(
                        CellFinished,
                        scenario=ctx.name,
                        controller="kappa_star",
                        cell="train",
                        seconds=time.perf_counter() - train_start,
                    )
                    ctx.student = result.student
                    return True
                finally:
                    if self.claims is not None:
                        self.claims.release(key)
            else:
                if not wait or self._out_of_time():
                    return False
                time.sleep(_WAIT_POLL_SECONDS)

    # -- evaluate cells ------------------------------------------------
    def _evaluate_cell(
        self, ctx: _ScenarioContext, controller_name: str, perturbation: str, stolen: bool = False
    ) -> bool:
        """Run (or replay) one evaluation cell; False when skipped/missing."""

        controller = self._controller(ctx, controller_name)
        cell_start = time.perf_counter()
        identity = {
            "scenario": ctx.name,
            "controller": controller_name,
            "cell": "evaluate",
            "perturbation": perturbation,
        }

        def compute_cell():
            self.tele.emit(CellStarted, **identity)
            compute_start = time.perf_counter()
            outcome = evaluate_robustness(
                ctx.system,
                controller,
                perturbation=perturbation,
                fraction=self.fraction,
                samples=self.samples,
                rng=self.seed,
            )
            self.tele.emit(
                CellFinished,
                seconds=time.perf_counter() - compute_start,
                safe_rate=outcome.safe_rate,
                **identity,
            )
            return {
                "safe_rate": outcome.safe_rate,
                "mean_energy": outcome.mean_energy,
                "samples": outcome.samples,
            }

        if self.store is not None:
            key = self.store.key(
                "evaluate",
                {
                    "system": ctx.spec.name,
                    "params": ctx.params,
                    "controller": _controller_identity(controller_name, controller),
                    "perturbation": perturbation,
                    "samples": self.samples,
                    "fraction": self.fraction,
                    "seed": self.seed,
                },
            )
            if self.offline:
                if not self.store.contains(key):
                    self.missing.append(
                        f"evaluate/{key.digest[:16]} ({ctx.name}:{controller_name}:{perturbation})"
                    )
                    return False
                payload = self.store.load_result(key)
                self.store.hits += 1
                self.report.cells_cached += 1
            elif self.claims is not None:
                if stolen and self.reuse and self.store.contains(key):
                    return True  # already finished elsewhere; nothing to steal
                payload = self._claimed_evaluate(key, compute_cell, stolen, identity)
                if payload is None:
                    return False
            else:
                hits_before = self.store.hits
                payload = self.store.get_or_run(key, compute_cell, force=not self.reuse)
                if self.store.hits > hits_before:
                    self.report.cells_cached += 1
                    self.tele.emit(CellCached, **identity)
                else:
                    self.report.cells_computed += 1
        else:
            payload = compute_cell()
        row = {
            "scenario": ctx.name,
            "controller": controller_name,
            "cell": "evaluate",
            "perturbation": perturbation,
            "safe_rate": payload["safe_rate"],
            "mean_energy": payload["mean_energy"],
            "samples": payload["samples"],
        }
        if self.store is None:
            row["seconds"] = time.perf_counter() - cell_start
        self.report.rows.append(row)
        self.emit(row)
        return True

    def _claimed_evaluate(
        self, key, compute_cell: Callable, stolen: bool, identity: Dict
    ) -> Optional[Dict]:
        """Claim-guarded execution of one evaluation cell (sharded runs)."""

        if self.reuse and self.store.contains(key):
            self.store.hits += 1
            self.report.cells_cached += 1
            self.tele.emit(CellCached, **identity)
            return self.store.load_result(key)
        if not self.claims.acquire(key):
            if not stolen:  # an owned cell left to a live claimant
                self.report.cells_skipped += 1
            return None
        stale_takeover = self.claims.last_acquire_was_takeover
        try:
            if self.reuse and self.store.contains(key):  # published while acquiring
                self.store.hits += 1
                self.report.cells_cached += 1
                self.tele.emit(CellCached, **identity)
                return self.store.load_result(key)
            with self.claims.hold(key):
                self.store.save(key, compute_cell())
            self.store.misses += 1
            self.report.cells_computed += 1
            if stolen:
                self.report.cells_stolen += 1
                self.tele.emit(CellStolen, stale=stale_takeover, **identity)
            return self.store.load_result(key)
        finally:
            self.claims.release(key)

    # -- verify cells --------------------------------------------------
    def _verify_jobs(self, ctxs: Sequence[_ScenarioContext]):
        from repro.verification.sweep import SweepJob

        jobs = []
        for ctx in ctxs:
            parameters = dict(ctx.spec.verify_budget)
            parameters.update(self.verify_overrides or {})
            jobs.append(
                SweepJob.from_network(
                    name=f"kappa_star@{ctx.name}",
                    system=ctx.name,
                    network=ctx.student.network,
                    **parameters,
                )
            )
        return jobs

    def _verify(self, ctxs: Sequence[_ScenarioContext], stolen: bool = False) -> None:
        """Fan one verification job per scenario across the sweep pool."""

        if not ctxs:
            return
        from repro.verification.sweep import VerificationSweep

        jobs = self._verify_jobs(ctxs)
        if stolen and self.reuse:
            # Steal only unfinished verification work; completed foreign
            # cells belong to the merge, not to this shard's report.
            pending = [
                (ctx, job)
                for ctx, job in zip(ctxs, jobs)
                if not self.store.contains(self.store.key("verify", job.cache_config(self.engine)))
            ]
            if not pending:
                return
            ctxs = [ctx for ctx, _ in pending]
            jobs = [job for _, job in pending]
        if self.offline:
            keys = [self.store.key("verify", job.cache_config(self.engine)) for job in jobs]
            present = []
            for ctx, job, key in zip(ctxs, jobs, keys):
                if self.store.contains(key):
                    present.append((ctx, job))
                else:
                    self.missing.append(f"verify/{key.digest[:16]} ({ctx.name})")
            if not present:
                return
            ctxs = [ctx for ctx, _ in present]
            jobs = [job for _, job in present]
        else:
            self.say(
                f"verifying {len(jobs)} student(s) across {max(1, self.jobs)} process(es)"
            )
        ctx_by_job = {id(job): ctx for ctx, job in zip(ctxs, jobs)}

        def on_job_start(job) -> None:
            # Fires in this process, right before the job enters execution.
            self.tele.emit(
                CellStarted,
                scenario=ctx_by_job[id(job)].name,
                controller="kappa_star",
                cell="verify",
            )

        def on_job_result(job, result) -> None:
            self.tele.emit(
                SweepJobFinished,
                job=job.name,
                system=job.system,
                status=result.status,
                seconds=result.elapsed_seconds,
                cached=result.cached,
                verified=result.verified,
            )

        sweep = VerificationSweep(
            jobs,
            processes=self.jobs or None,
            engine=self.engine,
            store=self.store,
            force=not self.reuse,
            claims=self.claims,
            on_start=on_job_start,
            on_result=on_job_result,
        )
        sweep_report = sweep.run()
        for ctx, result in zip(ctxs, sweep_report.results):
            if result.status == "skipped":
                if not stolen:  # an owned cell left to a live claimant
                    self.report.cells_skipped += 1
                continue
            row = {
                "scenario": ctx.name,
                "controller": "kappa_star",
                "cell": "verify",
                "status": result.status,
            }
            if self.store is None:
                row["seconds"] = result.elapsed_seconds
            if result.error:
                row["error"] = result.error
            summary = dict(result.summary)
            summary.pop("controller", None)  # the row's controller column is the matrix name
            if self.store is not None:
                for key in _TIMING_KEYS:
                    summary.pop(key, None)
                # Fresh summaries arrive in insertion order, replayed ones in
                # JSON-sorted order; sort both so the CSV header -- and with
                # it the whole file -- is byte-stable across resumed runs.
                summary = {key: summary[key] for key in sorted(summary)}
            row.update(summary)
            self.report.rows.append(row)
            if result.cached:
                self.report.cells_cached += 1
                self.tele.emit(
                    CellCached, scenario=ctx.name, controller="kappa_star", cell="verify"
                )
                self.tele.emit(
                    SweepJobFinished,
                    job=result.name,
                    system=result.system,
                    status=result.status,
                    seconds=result.elapsed_seconds,
                    cached=True,
                    verified=result.verified,
                )
            elif self.store is not None:
                self.report.cells_computed += 1
                self.tele.emit(
                    CellFinished,
                    scenario=ctx.name,
                    controller="kappa_star",
                    cell="verify",
                    seconds=result.elapsed_seconds,
                    status=result.status,
                )
                if stolen:
                    self.report.cells_stolen += 1
                    self.tele.emit(
                        CellStolen, scenario=ctx.name, controller="kappa_star", cell="verify"
                    )
            self.emit(row)

    # -- main flow -----------------------------------------------------
    def _telemetry_counters(self) -> Dict[str, int]:
        """Heartbeat payload: the report's counters (read-only snapshot)."""

        report = self.report
        return {
            "cells_done": report.cells_computed + report.cells_cached,
            "cells_computed": report.cells_computed,
            "cells_cached": report.cells_cached,
            "cells_stolen": report.cells_stolen,
            "cells_skipped": report.cells_skipped,
        }

    def run(self) -> ScenarioMatrixReport:
        contexts = self._contexts()
        by_name = {ctx.name: ctx for ctx in contexts}
        cells = _enumerate_cells(
            [(ctx.name, ctx.controller_names) for ctx in contexts],
            self.perturbations,
            include_verify=self.train and self.verify,
        )
        owned = [
            (position, cell)
            for position, cell in enumerate(cells)
            if self.shard is None or self.shard.owns(position)
        ]
        self.tele.emit(
            RunStarted,
            scenarios=tuple(self.names),
            cells_total=len(cells),
            cells_owned=len(owned),
            pid=os.getpid(),
        )
        with self.tele.heartbeats(self._telemetry_counters):
            self._execute(contexts, by_name, cells, owned)

        if self.offline and self.missing:
            raise MatrixIncompleteError(self.missing)

        self.report.elapsed_seconds = time.perf_counter() - self.start
        self.tele.emit(
            RunFinished,
            status=self.report.status,
            cells_computed=self.report.cells_computed,
            cells_cached=self.report.cells_cached,
            cells_stolen=self.report.cells_stolen,
            cells_skipped=self.report.cells_skipped,
            rows=len(self.report.rows),
            seconds=self.report.elapsed_seconds,
        )
        if self.shard is not None:
            self._write_shard_summary()
        return self.report

    def _execute(self, contexts, by_name, cells, owned) -> None:
        """Evaluate, verify and steal -- the body between lifecycle events."""

        owned_eval = [(p, c) for p, c in owned if c.kind == "evaluate"]
        owned_verify = [(p, c) for p, c in owned if c.kind == "verify"]

        for ctx in contexts:
            if self._out_of_time():
                break
            scenario_eval = [(p, c) for p, c in owned_eval if c.scenario == ctx.name]
            needs_student = self.train and (
                self.shard is None
                and not self.offline
                or any(c.controller == "kappa_star" for _, c in scenario_eval)
                or any(c.scenario == ctx.name for _, c in owned_verify)
            )
            if needs_student and not self._ensure_student(ctx):
                continue  # offline: recorded as missing; sharded: budget expired
            ran = set()
            for position, cell in scenario_eval:
                if self._out_of_time():
                    break
                self._evaluate_cell(ctx, cell.controller, cell.perturbation)
                ran.add(cell.controller)
            for controller_name in ctx.controller_names:
                if controller_name in ran:
                    self.say(
                        f"[{ctx.name}] evaluated {controller_name} under "
                        f"{len(list(self.perturbations))} regime(s)"
                    )

        if not self._out_of_time():
            verify_ctxs = [
                by_name[cell.scenario]
                for _, cell in owned_verify
                if by_name[cell.scenario].student is not None or not self.train
            ]
            verify_ctxs = [ctx for ctx in verify_ctxs if ctx.student is not None]
            self._verify(verify_ctxs)

        if self.shard is not None and self.steal and not self.force:
            self._steal(contexts, by_name, cells)

    def _has_row(self, cell: MatrixCell) -> bool:
        return any(
            row["scenario"] == cell.scenario
            and row["controller"] == cell.controller
            and row["cell"] == cell.kind
            and row.get("perturbation") == cell.perturbation
            for row in self.report.rows
        )

    def _verify_done(self, ctx: _ScenarioContext) -> bool:
        job = self._verify_jobs([ctx])[0]
        return self.store.contains(self.store.key("verify", job.cache_config(self.engine)))

    def _steal(self, contexts, by_name, cells) -> None:
        """Pick up unfinished cells until none are claimable.

        The worklist is every cell this shard produced no row for --
        mostly foreign cells, plus own cells an earlier thief claimed and
        then abandoned.  Already-published cells are dropped silently
        (they belong to whichever shard computed them); rounds repeat
        while progress is made, so a cell freshly claimed by a live shard
        is skipped this round but stolen later if the claimant dies (its
        lease expires).  Students still being trained elsewhere defer a
        cell to the next round the same way.
        """

        pending = [
            (position, cell)
            for position, cell in enumerate(cells)
            if not self._has_row(cell)
        ]
        progress = True
        while pending and progress and not self._out_of_time():
            progress = False
            done: List[int] = []
            verify_steal: List[_ScenarioContext] = []
            for position, cell in pending:
                if self._out_of_time():
                    return
                ctx = by_name[cell.scenario]
                if cell.controller == "kappa_star" and ctx.student is None:
                    if not self._ensure_student(ctx, wait=False):
                        continue  # being trained elsewhere; revisit next round
                    progress = True
                if cell.kind == "evaluate":
                    if self._evaluate_cell(ctx, cell.controller, cell.perturbation, stolen=True):
                        progress = True
                        done.append(position)
                else:
                    verify_steal.append(ctx)
            if verify_steal:
                self._verify(verify_steal, stolen=True)
            remaining = [
                (position, cell)
                for position, cell in pending
                if position not in done
                and not (
                    cell.kind == "verify"
                    and by_name[cell.scenario].student is not None
                    and self._verify_done(by_name[cell.scenario])
                )
            ]
            if len(remaining) < len(pending):
                progress = True
            pending = remaining

    def _write_shard_summary(self) -> None:
        """Per-shard accounting dropped next to the store (ops + tests)."""

        root = self.store.root / "shards"
        root.mkdir(parents=True, exist_ok=True)
        path = root / f"{self.shard.index}-of-{self.shard.count}.json"
        staging = path.with_name(f".tmp-{path.name}-{os.getpid()}")
        summary = {
            "shard": str(self.shard),
            "status": self.report.status,
            "cells_computed": self.report.cells_computed,
            "cells_cached": self.report.cells_cached,
            "cells_stolen": self.report.cells_stolen,
            "cells_skipped": self.report.cells_skipped,
            "rows": len(self.report.rows),
            "elapsed_seconds": self.report.elapsed_seconds,
        }
        with staging.open("w") as handle:
            json.dump(summary, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(staging, path)


def _null_context():
    import contextlib

    return contextlib.nullcontext()


def run_scenario_matrix(
    scenarios: Optional[Sequence[str]] = None,
    perturbations: Sequence[str] = ("none", "attack", "noise"),
    samples: int = 32,
    fraction: float = 0.1,
    train: bool = True,
    verify: bool = True,
    jobs: int = 1,
    seed: int = 0,
    budget_scale: float = 1.0,
    train_overrides: Optional[Mapping[str, object]] = None,
    verify_overrides: Optional[Mapping[str, object]] = None,
    engine: str = "batched",
    progress: Optional[Callable[[str], None]] = None,
    store=None,
    run_dir: Optional[Union[str, Path]] = None,
    resume: bool = True,
    force: bool = False,
    on_cell: Optional[Callable[[Dict], None]] = None,
    shard: Optional[Union[str, ShardSpec]] = None,
    steal: bool = True,
    claim_lease: Optional[float] = None,
    shard_time_budget: Optional[float] = None,
    offline: bool = False,
    telemetry: Optional[bool] = None,
    telemetry_source: Optional[str] = None,
) -> ScenarioMatrixReport:
    """Run the ``(scenario x controller x perturbation)`` matrix.

    For every scenario (default: the whole catalog) the runner builds the
    plant and its default experts, optionally trains a Cocktail student
    (``train=True``) on the scenario's budget hints scaled by
    ``budget_scale``, evaluates every controller under every perturbation
    regime on the batched rollout engine, and finally fans one verification
    job per trained student across a :class:`VerificationSweep` pool of
    ``jobs`` processes.  ``train_overrides`` / ``verify_overrides`` replace
    individual budget-hint keys after scaling (the smoke harness pins tiny
    values this way).

    Scenario names may be variants (``"vanderpol?mu=1.5"``); the override
    string travels into the verification worker, which rebuilds the exact
    plant through the registry.

    ``store`` (or ``run_dir``, which opens a
    :class:`~repro.experiments.store.RunStore` there) makes the run
    resumable: every stage is keyed by the digest of its resolved config
    and flushed as soon as it completes, cells already present are loaded
    instead of recomputed (``resume=True``, the default), and ``force=True``
    recomputes and overwrites everything.  Store-backed rows carry no
    wall-clock columns -- timings live in the store entries -- so the same
    matrix always serialises to byte-identical CSV.  ``on_cell`` is invoked
    with each row right after it is appended (and, store-backed, flushed);
    an exception raised there aborts the run but loses no completed cell.

    ``shard`` (a :class:`ShardSpec` or ``"i/N"`` string; requires a store)
    restricts execution to that shard's round-robin slice of the canonical
    cell order, coordinating with sibling shards through claim files:
    ``steal=True`` (default) also picks up unfinished foreign cells --
    including cells whose worker died, once ``claim_lease`` seconds pass
    with no heartbeat -- and ``shard_time_budget`` bounds the shard's wall
    clock, leaving the remainder unclaimed with
    ``report.status == "resource-exhausted"``.  A sharded run writes a
    matrix manifest into the run directory; assemble the full CSV
    afterwards with :func:`merge_matrix_run` (``repro runs merge``).

    ``offline=True`` replays *everything* from the store and raises
    :class:`MatrixIncompleteError` if any cell is missing -- the merge
    primitive: the reassembled rows are byte-identical to a single-process
    run's because both paths serialise the same store entries in the same
    canonical order.

    ``telemetry`` controls the typed event log under ``<run_dir>/events/``
    (see :mod:`repro.telemetry`).  The default (``None``) turns it on for
    every store-backed executing run and off otherwise; ``False`` disables
    it explicitly, and ``True`` without a store (or with ``offline=True``,
    which executes nothing) is an error.  The log never influences rows,
    store entries or CSVs -- it is written beside them for ``repro runs
    watch`` / ``repro runs stats``.  ``telemetry_source`` overrides the
    event-log file name (default ``"main"`` / ``"shard-i-of-N"``); the job
    daemon uses it to give each job running against one run directory its
    own stream.
    """

    names = list(scenarios) if scenarios is not None else list_scenarios()
    if not names:
        raise ValueError("no scenarios to run; the catalog (or the requested list) is empty")
    if isinstance(shard, str):
        shard = ShardSpec.parse(shard)
    if store is None and run_dir is not None:
        from repro.experiments.store import RunStore

        store = RunStore(run_dir)
    if shard is not None and store is None:
        raise ValueError("sharded runs need a run store (pass store= or run_dir=)")
    if offline and store is None:
        raise ValueError("offline replay needs a run store (pass store= or run_dir=)")
    if offline and (force or shard is not None):
        raise ValueError("offline replay cannot be combined with force= or shard=")
    if telemetry is None:
        telemetry = store is not None and not offline
    elif telemetry:
        if store is None:
            raise ValueError("telemetry needs a run store (pass store= or run_dir=)")
        if offline:
            raise ValueError("offline replay executes nothing; there is no telemetry to record")

    claims = None
    if shard is not None:
        from repro.experiments.store import DEFAULT_CLAIM_LEASE

        lease = DEFAULT_CLAIM_LEASE if claim_lease is None else float(claim_lease)
        claims = store.claims(owner=f"shard-{shard}", lease_seconds=lease)
        write_matrix_manifest(
            store.root,
            matrix_manifest(
                scenarios=names,
                perturbations=perturbations,
                samples=samples,
                fraction=fraction,
                train=train,
                verify=verify,
                seed=seed,
                budget_scale=budget_scale,
                train_overrides=train_overrides,
                verify_overrides=verify_overrides,
                engine=engine,
            ),
        )

    if telemetry:
        # telemetry_source lets a host running many matrices against one run
        # directory (the job daemon) give each its own event-log file; the
        # default names are what `runs watch` users expect from the CLI.
        source = telemetry_source or (
            "main" if shard is None else f"shard-{shard.index}-of-{shard.count}"
        )
        tele = TelemetryEmitter(store.root, source=source)
    else:
        tele = NullTelemetryEmitter()

    execution = _MatrixExecution(
        names=names,
        perturbations=perturbations,
        samples=samples,
        fraction=fraction,
        train=train,
        verify=verify,
        jobs=jobs,
        seed=seed,
        budget_scale=budget_scale,
        train_overrides=train_overrides,
        verify_overrides=verify_overrides,
        engine=engine,
        say=progress if progress is not None else (lambda message: None),
        emit=on_cell if on_cell is not None else (lambda row: None),
        store=store,
        reuse=store is not None and resume and not force,
        force=force,
        shard=shard,
        steal=steal,
        claims=claims,
        shard_time_budget=shard_time_budget,
        offline=offline,
        tele=tele,
    )
    try:
        return execution.run()
    finally:
        tele.close()


def matrix_manifest(
    scenarios: Sequence[str],
    perturbations: Sequence[str],
    samples: int,
    fraction: float,
    train: bool,
    verify: bool,
    seed: int,
    budget_scale: float,
    train_overrides: Optional[Mapping[str, object]],
    verify_overrides: Optional[Mapping[str, object]],
    engine: str,
) -> Dict:
    """The identity a sharded run records so the merge can replay it."""

    return {
        "scenarios": list(scenarios),
        "perturbations": list(perturbations),
        "samples": samples,
        "fraction": fraction,
        "train": train,
        "verify": verify,
        "seed": seed,
        "budget_scale": budget_scale,
        "train_overrides": dict(train_overrides or {}),
        "verify_overrides": dict(verify_overrides or {}),
        "engine": engine,
    }


def merge_matrix_run(
    run_dir: Union[str, Path],
    jobs: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> ScenarioMatrixReport:
    """Reassemble a sharded run into the canonical single-process report.

    Reads the matrix manifest the shards wrote into ``run_dir`` and
    replays every cell from the store in canonical order (nothing
    executes; a missing cell raises :class:`MatrixIncompleteError`).  The
    resulting report -- and its CSV -- is byte-identical to running the
    same matrix in a single process, which is what the shard regression
    pack pins.
    """

    manifest = read_matrix_manifest(run_dir)
    return run_scenario_matrix(
        scenarios=manifest["scenarios"],
        perturbations=tuple(manifest["perturbations"]),
        samples=manifest["samples"],
        fraction=manifest["fraction"],
        train=manifest["train"],
        verify=manifest["verify"],
        jobs=jobs,
        seed=manifest["seed"],
        budget_scale=manifest["budget_scale"],
        train_overrides=manifest["train_overrides"] or None,
        verify_overrides=manifest["verify_overrides"] or None,
        engine=manifest["engine"],
        progress=progress,
        run_dir=run_dir,
        offline=True,
    )


def _shard_worker(index: int, count: int, run_dir: str, matrix_kwargs: Dict) -> None:
    """Worker-process body of :func:`run_sharded_matrix` (must pickle)."""

    run_scenario_matrix(shard=ShardSpec(index=index, count=count), run_dir=run_dir, **matrix_kwargs)


def run_sharded_matrix(
    shards: int,
    run_dir: Union[str, Path],
    progress: Optional[Callable[[str], None]] = None,
    merge: bool = True,
    **matrix_kwargs,
) -> ScenarioMatrixReport:
    """Fan the matrix across ``shards`` local worker processes and merge.

    Each worker runs one :class:`ShardSpec` slice against the shared
    ``run_dir`` (workers are plain non-daemonic processes, so each may
    still host its own verification pool).  Work-stealing means a straggler
    or crashed worker does not strand the grid: as long as the surviving
    workers finish, the merge succeeds; otherwise
    :class:`MatrixIncompleteError` names the missing cells and rerunning
    (resume) completes them.
    """

    from repro.utils.parallel import spawn_workers

    shards = int(shards)
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    say = progress if progress is not None else (lambda message: None)
    run_dir = Path(run_dir)
    worker_kwargs = dict(matrix_kwargs)
    worker_kwargs.pop("progress", None)
    worker_kwargs.pop("on_cell", None)
    say(f"running {shards} matrix shard(s) against {run_dir}")
    exit_codes = spawn_workers(
        _shard_worker,
        [(index, shards, str(run_dir), worker_kwargs) for index in range(1, shards + 1)],
    )
    failed = [index + 1 for index, code in enumerate(exit_codes) if code != 0]
    if failed:
        say(f"shard(s) {failed} exited abnormally; merging whatever the store holds")
    if not merge:
        report = ScenarioMatrixReport(scenarios=list(matrix_kwargs.get("scenarios") or []))
        report.status = "ok" if not failed else "error"
        return report
    return merge_matrix_run(run_dir, jobs=int(matrix_kwargs.get("jobs") or 1), progress=progress)
