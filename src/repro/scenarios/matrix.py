"""Cross-scenario matrix runner: ``(scenario x controller x perturbation)``.

The ROADMAP's scenario-diversity goal is operationally a *matrix*: every
registered scenario crossed with every controller of interest and every
perturbation regime, each cell a Monte-Carlo evaluation on the batched
rollout engine, plus one verification job per trained student fanned across
the :class:`~repro.verification.sweep.VerificationSweep` process pool.
:func:`run_scenario_matrix` expands and runs that matrix and returns a
:class:`ScenarioMatrixReport` whose ``to_csv`` emits one flat row per cell
-- the cross-scenario CSV the CLI's ``repro scenarios run`` writes.

Per-scenario budgets come from each spec's ``train_budget`` /
``verify_budget`` hints; ``budget_scale`` shrinks the integer training
knobs uniformly (the ``make scenario-smoke`` target runs the whole catalog
at a tiny scale this way).

With a :class:`~repro.experiments.store.RunStore` (``store=``/``run_dir=``)
the matrix becomes an *incremental* workload: every stage -- the kappa*
training, each evaluation cell, each verification job -- is keyed by the
digest of its resolved config and flushed to the store as soon as it
completes, so an interrupted sweep rerun with ``resume=True`` executes
only the missing cells and a fully warmed store answers the whole matrix
from disk.  Store-backed rows are deterministic (wall-clock timings stay
in the store's entry metadata, not in the rows), which is what makes the
resumed CSV byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.cocktail import CocktailPipeline
from repro.core.config import CocktailConfig
from repro.metrics.robustness import evaluate_robustness
from repro.scenarios.registry import list_scenarios, resolve_scenario
from repro.utils.seeding import set_global_seed

#: Non-deterministic keys stripped from store-backed verification rows.
_TIMING_KEYS = ("total_seconds", "reach_seconds", "invariant_seconds")

#: The training-budget keys that scale with ``budget_scale``.
_SCALABLE_HINTS = ("mixing_epochs", "mixing_steps", "distill_epochs", "dataset_size", "eval_samples")


def scale_budget_hints(hints: Mapping[str, object], factor: float) -> Dict[str, object]:
    """Uniformly shrink/grow the integer budget knobs (floored at 1)."""

    scaled = dict(hints or {})
    if factor != 1.0:
        for key in _SCALABLE_HINTS:
            if key in scaled:
                scaled[key] = max(1, int(round(float(scaled[key]) * factor)))
    return scaled


@dataclass
class ScenarioMatrixReport:
    """Flat per-cell records of one matrix run."""

    rows: List[Dict] = field(default_factory=list)
    scenarios: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0
    #: Stage executions vs run-store replays (both stay 0 without a store).
    cells_computed: int = 0
    cells_cached: int = 0

    @property
    def num_cells(self) -> int:
        return len(self.rows)

    @property
    def num_unsafe_free(self) -> int:
        """Evaluation cells with a perfect safe rate."""

        return sum(1 for row in self.rows if row.get("safe_rate") == 1.0)

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write one row per matrix cell (union of all keys) to ``path``."""

        import csv

        keys: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in keys:
                    keys.append(key)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=keys, restval="")
            writer.writeheader()
            writer.writerows(self.rows)
        return path

    def table(self) -> str:
        """Aligned text table of the matrix (one line per cell + a footer)."""

        header = (
            f"{'scenario':12s} {'controller':12s} {'cell':10s} {'perturb':8s} "
            f"{'Sr':>7s} {'energy':>9s} {'verdict':>12s} {'seconds':>8s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            safe_rate = row.get("safe_rate")
            energy = row.get("mean_energy")
            verdict = row.get("reach_status", row.get("status", "-"))
            lines.append(
                f"{row['scenario']:12s} {row['controller']:12s} {row['cell']:10s} "
                f"{str(row.get('perturbation', '-')):8s} "
                f"{(f'{100 * safe_rate:6.1f}%' if safe_rate is not None else '      -'):>7s} "
                f"{(f'{energy:9.2f}' if energy is not None else '        -'):>9s} "
                f"{str(verdict):>12s} {row.get('seconds', 0.0):8.2f}"
            )
        lines.append(
            f"{self.num_cells} cells over {len(self.scenarios)} scenario(s) | "
            f"{self.elapsed_seconds:.2f}s wall clock"
        )
        return "\n".join(lines)


def _controller_identity(name: str, controller) -> Dict[str, object]:
    """What makes an evaluation cell's controller unique for digesting.

    Trained students are identified by their weight digest (so a retrain
    with different weights can never replay a stale cell); analytic experts
    are a pure function of the plant and their position, so their name
    suffices.
    """

    network = getattr(controller, "network", None)
    if network is not None:
        from repro.nn.lipschitz import network_weights_digest

        return {"kind": "network", "weights": network_weights_digest(network)}
    return {"kind": "analytic", "name": name}


def run_scenario_matrix(
    scenarios: Optional[Sequence[str]] = None,
    perturbations: Sequence[str] = ("none", "attack", "noise"),
    samples: int = 32,
    fraction: float = 0.1,
    train: bool = True,
    verify: bool = True,
    jobs: int = 1,
    seed: int = 0,
    budget_scale: float = 1.0,
    train_overrides: Optional[Mapping[str, object]] = None,
    verify_overrides: Optional[Mapping[str, object]] = None,
    engine: str = "batched",
    progress: Optional[Callable[[str], None]] = None,
    store=None,
    run_dir: Optional[Union[str, Path]] = None,
    resume: bool = True,
    force: bool = False,
    on_cell: Optional[Callable[[Dict], None]] = None,
) -> ScenarioMatrixReport:
    """Run the ``(scenario x controller x perturbation)`` matrix.

    For every scenario (default: the whole catalog) the runner builds the
    plant and its default experts, optionally trains a Cocktail student
    (``train=True``) on the scenario's budget hints scaled by
    ``budget_scale``, evaluates every controller under every perturbation
    regime on the batched rollout engine, and finally fans one verification
    job per trained student across a :class:`VerificationSweep` pool of
    ``jobs`` processes.  ``train_overrides`` / ``verify_overrides`` replace
    individual budget-hint keys after scaling (the smoke harness pins tiny
    values this way).

    Scenario names may be variants (``"vanderpol?mu=1.5"``); the override
    string travels into the verification worker, which rebuilds the exact
    plant through the registry.

    ``store`` (or ``run_dir``, which opens a
    :class:`~repro.experiments.store.RunStore` there) makes the run
    resumable: every stage is keyed by the digest of its resolved config
    and flushed as soon as it completes, cells already present are loaded
    instead of recomputed (``resume=True``, the default), and ``force=True``
    recomputes and overwrites everything.  Store-backed rows carry no
    wall-clock columns -- timings live in the store entries -- so the same
    matrix always serialises to byte-identical CSV.  ``on_cell`` is invoked
    with each row right after it is appended (and, store-backed, flushed);
    an exception raised there aborts the run but loses no completed cell.
    """

    names = list(scenarios) if scenarios is not None else list_scenarios()
    if not names:
        raise ValueError("no scenarios to run; the catalog (or the requested list) is empty")
    if store is None and run_dir is not None:
        from repro.experiments.store import RunStore

        store = RunStore(run_dir)
    reuse = store is not None and resume and not force
    say = progress if progress is not None else (lambda message: None)
    emit = on_cell if on_cell is not None else (lambda row: None)

    start = time.perf_counter()
    report = ScenarioMatrixReport(scenarios=list(names))
    sweep_jobs = []
    for name in names:
        spec, overrides = resolve_scenario(name)
        params = dict(spec.default_params)
        params.update(overrides)
        system = spec.make_system(**overrides)
        controllers = {
            f"kappa{index}": expert for index, expert in enumerate(spec.make_experts(system), start=1)
        }

        if train:
            hints = scale_budget_hints(spec.train_budget, budget_scale)
            hints.update(train_overrides or {})
            config = CocktailConfig.from_budget_hints(hints, seed=seed)
            train_key = None
            if store is not None:
                # direct_baseline is part of the identity: the CLI's train
                # command produces kappa_d + record.json under the same
                # budgets, and must never restore a matrix entry without them.
                train_key = store.key(
                    "train",
                    {
                        "system": spec.name,
                        "params": params,
                        "cocktail": config,
                        "seed": seed,
                        "direct_baseline": False,
                    },
                )
            if train_key is not None and reuse and store.contains(train_key):
                from repro.experts.base import NeuralController

                network = store.load_network(train_key, "kappa_star")
                controllers["kappa_star"] = NeuralController(network, name="kappa_star")
                store.hits += 1
                report.cells_cached += 1
                say(f"[{name}] kappa_star restored from the run store")
            else:
                say(f"[{name}] training kappa_star ({hints.get('mixing_epochs', '?')} mixing epochs)")
                set_global_seed(seed)
                result = CocktailPipeline(system, list(controllers.values()), config).run(
                    include_direct_baseline=False
                )
                controllers["kappa_star"] = result.student
                if train_key is not None:
                    store.save(
                        train_key,
                        {
                            "experts": [expert.name for expert in result.experts],
                            "dataset_size": len(result.dataset),
                        },
                        networks={"kappa_star": result.student.network},
                    )
                    store.misses += 1
                    report.cells_computed += 1

        for controller_name, controller in controllers.items():
            for perturbation in perturbations:
                cell_start = time.perf_counter()

                def compute_cell(controller=controller, perturbation=perturbation):
                    outcome = evaluate_robustness(
                        system,
                        controller,
                        perturbation=perturbation,
                        fraction=fraction,
                        samples=samples,
                        rng=seed,
                    )
                    return {
                        "safe_rate": outcome.safe_rate,
                        "mean_energy": outcome.mean_energy,
                        "samples": outcome.samples,
                    }

                if store is not None:
                    cell_key = store.key(
                        "evaluate",
                        {
                            "system": spec.name,
                            "params": params,
                            "controller": _controller_identity(controller_name, controller),
                            "perturbation": perturbation,
                            "samples": samples,
                            "fraction": fraction,
                            "seed": seed,
                        },
                    )
                    hits_before = store.hits
                    payload = store.get_or_run(cell_key, compute_cell, force=not reuse)
                    if store.hits > hits_before:
                        report.cells_cached += 1
                    else:
                        report.cells_computed += 1
                else:
                    payload = compute_cell()
                row = {
                    "scenario": name,
                    "controller": controller_name,
                    "cell": "evaluate",
                    "perturbation": perturbation,
                    "safe_rate": payload["safe_rate"],
                    "mean_energy": payload["mean_energy"],
                    "samples": payload["samples"],
                }
                if store is None:
                    row["seconds"] = time.perf_counter() - cell_start
                report.rows.append(row)
                emit(row)
            say(f"[{name}] evaluated {controller_name} under {len(list(perturbations))} regime(s)")

        if train and verify:
            from repro.verification.sweep import SweepJob

            parameters = dict(spec.verify_budget)
            parameters.update(verify_overrides or {})
            sweep_jobs.append(
                SweepJob.from_network(
                    name=f"kappa_star@{name}",
                    system=name,
                    network=controllers["kappa_star"].network,
                    **parameters,
                )
            )

    if sweep_jobs:
        from repro.verification.sweep import VerificationSweep

        say(f"verifying {len(sweep_jobs)} student(s) across {max(1, jobs)} process(es)")
        sweep = VerificationSweep(
            sweep_jobs, processes=jobs or None, engine=engine, store=store, force=not reuse
        )
        sweep_report = sweep.run()
        for name, result in zip(names, sweep_report.results):
            row = {
                "scenario": name,
                "controller": "kappa_star",
                "cell": "verify",
                "status": result.status,
            }
            if store is None:
                row["seconds"] = result.elapsed_seconds
            if result.error:
                row["error"] = result.error
            summary = dict(result.summary)
            summary.pop("controller", None)  # the row's controller column is the matrix name
            if store is not None:
                for key in _TIMING_KEYS:
                    summary.pop(key, None)
                # Fresh summaries arrive in insertion order, replayed ones in
                # JSON-sorted order; sort both so the CSV header -- and with
                # it the whole file -- is byte-stable across resumed runs.
                summary = {key: summary[key] for key in sorted(summary)}
            row.update(summary)
            report.rows.append(row)
            if result.cached:
                report.cells_cached += 1
            elif store is not None:
                report.cells_computed += 1
            emit(row)

    report.elapsed_seconds = time.perf_counter() - start
    return report
