"""Cross-scenario matrix runner: ``(scenario x controller x perturbation)``.

The ROADMAP's scenario-diversity goal is operationally a *matrix*: every
registered scenario crossed with every controller of interest and every
perturbation regime, each cell a Monte-Carlo evaluation on the batched
rollout engine, plus one verification job per trained student fanned across
the :class:`~repro.verification.sweep.VerificationSweep` process pool.
:func:`run_scenario_matrix` expands and runs that matrix and returns a
:class:`ScenarioMatrixReport` whose ``to_csv`` emits one flat row per cell
-- the cross-scenario CSV the CLI's ``repro scenarios run`` writes.

Per-scenario budgets come from each spec's ``train_budget`` /
``verify_budget`` hints; ``budget_scale`` shrinks the integer training
knobs uniformly (the ``make scenario-smoke`` target runs the whole catalog
at a tiny scale this way).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.core.cocktail import CocktailPipeline
from repro.core.config import CocktailConfig
from repro.metrics.robustness import evaluate_robustness
from repro.scenarios.registry import list_scenarios, resolve_scenario
from repro.utils.seeding import set_global_seed

#: The training-budget keys that scale with ``budget_scale``.
_SCALABLE_HINTS = ("mixing_epochs", "mixing_steps", "distill_epochs", "dataset_size", "eval_samples")


def scale_budget_hints(hints: Mapping[str, object], factor: float) -> Dict[str, object]:
    """Uniformly shrink/grow the integer budget knobs (floored at 1)."""

    scaled = dict(hints or {})
    if factor != 1.0:
        for key in _SCALABLE_HINTS:
            if key in scaled:
                scaled[key] = max(1, int(round(float(scaled[key]) * factor)))
    return scaled


@dataclass
class ScenarioMatrixReport:
    """Flat per-cell records of one matrix run."""

    rows: List[Dict] = field(default_factory=list)
    scenarios: List[str] = field(default_factory=list)
    elapsed_seconds: float = 0.0

    @property
    def num_cells(self) -> int:
        return len(self.rows)

    @property
    def num_unsafe_free(self) -> int:
        """Evaluation cells with a perfect safe rate."""

        return sum(1 for row in self.rows if row.get("safe_rate") == 1.0)

    def to_csv(self, path: Union[str, Path]) -> Path:
        """Write one row per matrix cell (union of all keys) to ``path``."""

        import csv

        keys: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in keys:
                    keys.append(key)
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=keys, restval="")
            writer.writeheader()
            writer.writerows(self.rows)
        return path

    def table(self) -> str:
        """Aligned text table of the matrix (one line per cell + a footer)."""

        header = (
            f"{'scenario':12s} {'controller':12s} {'cell':10s} {'perturb':8s} "
            f"{'Sr':>7s} {'energy':>9s} {'verdict':>12s} {'seconds':>8s}"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            safe_rate = row.get("safe_rate")
            energy = row.get("mean_energy")
            verdict = row.get("reach_status", row.get("status", "-"))
            lines.append(
                f"{row['scenario']:12s} {row['controller']:12s} {row['cell']:10s} "
                f"{str(row.get('perturbation', '-')):8s} "
                f"{(f'{100 * safe_rate:6.1f}%' if safe_rate is not None else '      -'):>7s} "
                f"{(f'{energy:9.2f}' if energy is not None else '        -'):>9s} "
                f"{str(verdict):>12s} {row.get('seconds', 0.0):8.2f}"
            )
        lines.append(
            f"{self.num_cells} cells over {len(self.scenarios)} scenario(s) | "
            f"{self.elapsed_seconds:.2f}s wall clock"
        )
        return "\n".join(lines)


def run_scenario_matrix(
    scenarios: Optional[Sequence[str]] = None,
    perturbations: Sequence[str] = ("none", "attack", "noise"),
    samples: int = 32,
    fraction: float = 0.1,
    train: bool = True,
    verify: bool = True,
    jobs: int = 1,
    seed: int = 0,
    budget_scale: float = 1.0,
    train_overrides: Optional[Mapping[str, object]] = None,
    verify_overrides: Optional[Mapping[str, object]] = None,
    engine: str = "batched",
    progress: Optional[Callable[[str], None]] = None,
) -> ScenarioMatrixReport:
    """Run the ``(scenario x controller x perturbation)`` matrix.

    For every scenario (default: the whole catalog) the runner builds the
    plant and its default experts, optionally trains a Cocktail student
    (``train=True``) on the scenario's budget hints scaled by
    ``budget_scale``, evaluates every controller under every perturbation
    regime on the batched rollout engine, and finally fans one verification
    job per trained student across a :class:`VerificationSweep` pool of
    ``jobs`` processes.  ``train_overrides`` / ``verify_overrides`` replace
    individual budget-hint keys after scaling (the smoke harness pins tiny
    values this way).

    Scenario names may be variants (``"vanderpol?mu=1.5"``); the override
    string travels into the verification worker, which rebuilds the exact
    plant through the registry.
    """

    names = list(scenarios) if scenarios is not None else list_scenarios()
    if not names:
        raise ValueError("no scenarios to run; the catalog (or the requested list) is empty")
    say = progress if progress is not None else (lambda message: None)

    start = time.perf_counter()
    report = ScenarioMatrixReport(scenarios=list(names))
    sweep_jobs = []
    for name in names:
        spec, overrides = resolve_scenario(name)
        system = spec.make_system(**overrides)
        controllers = {
            f"kappa{index}": expert for index, expert in enumerate(spec.make_experts(system), start=1)
        }

        if train:
            hints = scale_budget_hints(spec.train_budget, budget_scale)
            hints.update(train_overrides or {})
            say(f"[{name}] training kappa_star ({hints.get('mixing_epochs', '?')} mixing epochs)")
            set_global_seed(seed)
            config = CocktailConfig.from_budget_hints(hints, seed=seed)
            result = CocktailPipeline(system, list(controllers.values()), config).run(
                include_direct_baseline=False
            )
            controllers["kappa_star"] = result.student

        for controller_name, controller in controllers.items():
            for perturbation in perturbations:
                cell_start = time.perf_counter()
                outcome = evaluate_robustness(
                    system,
                    controller,
                    perturbation=perturbation,
                    fraction=fraction,
                    samples=samples,
                    rng=seed,
                )
                report.rows.append(
                    {
                        "scenario": name,
                        "controller": controller_name,
                        "cell": "evaluate",
                        "perturbation": perturbation,
                        "safe_rate": outcome.safe_rate,
                        "mean_energy": outcome.mean_energy,
                        "samples": outcome.samples,
                        "seconds": time.perf_counter() - cell_start,
                    }
                )
            say(f"[{name}] evaluated {controller_name} under {len(list(perturbations))} regime(s)")

        if train and verify:
            from repro.verification.sweep import SweepJob

            parameters = dict(spec.verify_budget)
            parameters.update(verify_overrides or {})
            sweep_jobs.append(
                SweepJob.from_network(
                    name=f"kappa_star@{name}",
                    system=name,
                    network=controllers["kappa_star"].network,
                    **parameters,
                )
            )

    if sweep_jobs:
        from repro.verification.sweep import VerificationSweep

        say(f"verifying {len(sweep_jobs)} student(s) across {max(1, jobs)} process(es)")
        sweep_report = VerificationSweep(sweep_jobs, processes=jobs or None, engine=engine).run()
        for name, result in zip(names, sweep_report.results):
            row = {
                "scenario": name,
                "controller": "kappa_star",
                "cell": "verify",
                "status": result.status,
                "seconds": result.elapsed_seconds,
            }
            if result.error:
                row["error"] = result.error
            summary = dict(result.summary)
            summary.pop("controller", None)  # the row's controller column is the matrix name
            row.update(summary)
            report.rows.append(row)

    report.elapsed_seconds = time.perf_counter() - start
    return report
