"""Random measurement-noise models.

The paper's measurement noise is "a random variable sampled from a uniform
distribution and added to the system state s(t) at every step", with a
magnitude of 10-15 % of the system state value bound.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.utils.seeding import get_rng


class UniformMeasurementNoise:
    """Additive uniform noise ``delta ~ U[-bound, bound]`` per component."""

    def __init__(self, bound: Union[float, Sequence[float]]):
        self.bound = np.atleast_1d(np.asarray(bound, dtype=np.float64))
        if np.any(self.bound < 0):
            raise ValueError("noise bound must be non-negative")

    def __call__(self, state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        rng = get_rng(rng)
        return state + rng.uniform(-self.bound, self.bound, size=state.shape)

    def perturb_batch(self, states: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Perturb an ``(N, state_dim)`` batch with one vectorised draw."""

        rng = get_rng(rng)
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        return states + rng.uniform(-self.bound, self.bound, size=states.shape)

    def magnitude(self) -> np.ndarray:
        return self.bound.copy()


class GaussianMeasurementNoise:
    """Additive Gaussian noise truncated to the perturbation bound.

    Not used in the paper's tables but provided for the robustness ablation:
    Gaussian sensors are the more common model in practice.
    """

    def __init__(self, std: Union[float, Sequence[float]], bound_multiplier: float = 3.0):
        self.std = np.atleast_1d(np.asarray(std, dtype=np.float64))
        if np.any(self.std < 0):
            raise ValueError("noise std must be non-negative")
        self.bound_multiplier = float(bound_multiplier)

    def __call__(self, state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        rng = get_rng(rng)
        noise = rng.normal(0.0, self.std, size=state.shape)
        limit = self.bound_multiplier * self.std
        return state + np.clip(noise, -limit, limit)

    def perturb_batch(self, states: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Perturb an ``(N, state_dim)`` batch with one vectorised draw."""

        rng = get_rng(rng)
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        noise = rng.normal(0.0, self.std, size=states.shape)
        limit = self.bound_multiplier * self.std
        return states + np.clip(noise, -limit, limit)

    def magnitude(self) -> np.ndarray:
        return self.bound_multiplier * self.std
