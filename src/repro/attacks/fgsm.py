"""Fast Gradient Sign Method attacks on the controller input.

Two uses, matching Algorithm 1 and Section IV:

* during robust distillation, FGSM generates the adversarial training state
  ``s + Delta * sign(grad_s l(kappa*(s; q), u))`` (that code path lives in
  :mod:`repro.core.distillation` because it needs the training graph);
* during evaluation, FGSM perturbs the measured state so as to maximally
  change the controller's output, which is the "optimized adversarial
  attack" of Table II.  :class:`FGSMAttack` implements the evaluation-time
  attacker as a perturbation callable for :func:`repro.systems.rollout`.

For neural controllers the input gradient comes from the autodiff engine;
for arbitrary (black-box) controllers a finite-difference fallback estimates
the same sign vector.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.autodiff import Tensor
from repro.experts.base import Controller, NeuralController
from repro.systems.simulation import batch_controls
from repro.utils.seeding import get_rng

ControllerLike = Union[Controller, Callable[[np.ndarray], np.ndarray]]


def _control_change_gradient_batch(
    controller: ControllerLike, states: np.ndarray, epsilon: float = 1e-4
) -> np.ndarray:
    """Per-row gradient of the control-change objective for an ``(N, state_dim)`` batch.

    At the unperturbed point the gradient of ``0.5 * ||kappa(s') - kappa(s)||^2``
    is ``J(s)^T (kappa(s) - kappa(s)) = 0``, so instead we use the gradient of
    the output norm direction: the attack wants the perturbation that changes
    the control the most, which for a locally-linear controller is the top
    right-singular direction of the Jacobian.  We approximate it cheaply with
    the gradient of ``c^T kappa(s)`` where ``c`` is the sign of the nominal
    control (pushing the control away from its current value).

    Neural controllers get their per-row input gradients from one autodiff
    backward pass over the whole batch; black-box controllers fall back to
    central finite differences, vectorised so each state dimension costs two
    batched controller evaluations instead of ``2 N`` scalar ones.
    """

    states = np.atleast_2d(np.asarray(states, dtype=np.float64))
    nominal = batch_controls(controller, states)
    direction = np.sign(nominal)
    direction[direction == 0.0] = 1.0

    if isinstance(controller, NeuralController):
        tensor_states = Tensor(states, requires_grad=True)
        output = controller.network(tensor_states)
        if controller._scale is not None:
            output = output * Tensor(controller._scale) + Tensor(controller._offset)
        objective = (output * Tensor(direction)).sum()
        objective.backward()
        return tensor_states.grad

    gradient = np.zeros_like(states, dtype=np.float64)
    for index in range(states.shape[1]):
        plus = states.copy()
        minus = states.copy()
        plus[:, index] += epsilon
        minus[:, index] -= epsilon
        value_plus = np.sum(direction * batch_controls(controller, plus), axis=1)
        value_minus = np.sum(direction * batch_controls(controller, minus), axis=1)
        gradient[:, index] = (value_plus - value_minus) / (2.0 * epsilon)
    return gradient


def fgsm_perturbation(
    controller: ControllerLike,
    state: np.ndarray,
    bound: Union[float, Sequence[float]],
    maximize_control: bool = True,
) -> np.ndarray:
    """One FGSM step: ``s + bound * sign(grad)`` against the controller.

    ``maximize_control=True`` pushes the control further in its current
    direction (wasting energy and overshooting); ``False`` pushes against it
    (making the controller under-react near the safety boundary).  A
    single-row wrapper over :func:`fgsm_perturbation_batch`.
    """

    state = np.asarray(state, dtype=np.float64)
    return fgsm_perturbation_batch(
        controller, state[None, :], bound, maximize_control=maximize_control
    )[0]


def fgsm_perturbation_batch(
    controller: ControllerLike,
    states: np.ndarray,
    bound: Union[float, Sequence[float]],
    maximize_control: bool = True,
) -> np.ndarray:
    """Row-wise :func:`fgsm_perturbation` for an ``(N, state_dim)`` batch."""

    states = np.atleast_2d(np.asarray(states, dtype=np.float64))
    bound = np.atleast_1d(np.asarray(bound, dtype=np.float64))
    gradient = _control_change_gradient_batch(controller, states)
    sign = np.sign(gradient)
    sign[sign == 0.0] = 1.0
    if not maximize_control:
        sign = -sign
    return states + bound * sign


class FGSMAttack:
    """Evaluation-time FGSM attacker usable as a rollout perturbation.

    Parameters
    ----------
    controller:
        The controller under attack (white box, as in the paper).
    bound:
        Per-dimension perturbation bound ``Delta`` (typically 10-15 % of the
        state bound; see :func:`repro.attacks.perturbation_budget`).
    probability:
        Probability of attacking at each step (1.0 = attack every step).
    alternate:
        When ``True`` the attack direction alternates between amplifying and
        opposing the control, which destabilises controllers with large
        Lipschitz constants more effectively.
    maximize_control:
        Fixed attack direction used when ``alternate`` is ``False``:
        ``True`` amplifies the control (wasting energy and overshooting),
        ``False`` opposes it, making the controller under-react -- the
        stronger direction against weak stabilising controllers.
    """

    def __init__(
        self,
        controller: ControllerLike,
        bound: Union[float, Sequence[float]],
        probability: float = 1.0,
        alternate: bool = True,
        maximize_control: bool = True,
    ):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.controller = controller
        self.bound = np.atleast_1d(np.asarray(bound, dtype=np.float64))
        self.probability = float(probability)
        self.alternate = alternate
        self.maximize_control = bool(maximize_control)
        self._step = 0

    def _direction(self) -> bool:
        if self.alternate:
            return (self._step % 2) == 0
        return self.maximize_control

    def __call__(self, state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        rng = get_rng(rng)
        self._step += 1
        if self.probability < 1.0 and rng.uniform() > self.probability:
            return state
        return fgsm_perturbation(
            self.controller, state, self.bound, maximize_control=self._direction()
        )

    def perturb_batch(self, states: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Attack an ``(N, state_dim)`` batch of measurements at one time step.

        The step counter (and with it the ``alternate`` direction) advances
        once per *batch* step, so every batch member sees the same attack
        direction at a given simulation time -- with ``N = 1`` this consumes
        the random stream exactly like a scalar ``__call__``.
        """

        rng = get_rng(rng)
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        self._step += 1
        if self.probability < 1.0:
            attacked = rng.uniform(size=len(states)) <= self.probability
            if not np.any(attacked):
                return states
            result = states.copy()
            result[attacked] = fgsm_perturbation_batch(
                self.controller, states[attacked], self.bound, maximize_control=self._direction()
            )
            return result
        return fgsm_perturbation_batch(
            self.controller, states, self.bound, maximize_control=self._direction()
        )

    def reset(self) -> None:
        self._step = 0
