"""Fast Gradient Sign Method attacks on the controller input.

Two uses, matching Algorithm 1 and Section IV:

* during robust distillation, FGSM generates the adversarial training state
  ``s + Delta * sign(grad_s l(kappa*(s; q), u))`` (that code path lives in
  :mod:`repro.core.distillation` because it needs the training graph);
* during evaluation, FGSM perturbs the measured state so as to maximally
  change the controller's output, which is the "optimized adversarial
  attack" of Table II.  :class:`FGSMAttack` implements the evaluation-time
  attacker as a perturbation callable for :func:`repro.systems.rollout`.

For neural controllers the input gradient comes from the autodiff engine;
for arbitrary (black-box) controllers a finite-difference fallback estimates
the same sign vector.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.autodiff import Tensor
from repro.experts.base import Controller, NeuralController
from repro.utils.seeding import get_rng

ControllerLike = Union[Controller, Callable[[np.ndarray], np.ndarray]]


def _control_change_gradient(controller: ControllerLike, state: np.ndarray, epsilon: float = 1e-4) -> np.ndarray:
    """Gradient of ``0.5 * ||kappa(s') - kappa(s)||^2`` w.r.t. ``s'`` at ``s' = s``.

    At the unperturbed point this gradient is ``J(s)^T (kappa(s) - kappa(s)) = 0``,
    so instead we use the gradient of the output norm direction: the attack
    wants the perturbation that changes the control the most, which for a
    locally-linear controller is the top right-singular direction of the
    Jacobian.  We approximate it cheaply with the gradient of
    ``c^T kappa(s)`` where ``c`` is the sign of the nominal control (pushing
    the control away from its current value).
    """

    nominal = np.atleast_1d(np.asarray(controller(state), dtype=np.float64))
    direction = np.sign(nominal)
    direction[direction == 0.0] = 1.0

    if isinstance(controller, NeuralController):
        tensor_state = Tensor(np.atleast_2d(state), requires_grad=True)
        output = controller.network(tensor_state)
        if controller._scale is not None:
            output = output * Tensor(controller._scale) + Tensor(controller._offset)
        objective = (output * Tensor(direction)).sum()
        objective.backward()
        return tensor_state.grad[0]

    gradient = np.zeros_like(state, dtype=np.float64)
    for index in range(state.size):
        plus = state.copy()
        minus = state.copy()
        plus[index] += epsilon
        minus[index] -= epsilon
        value_plus = float(direction @ np.atleast_1d(controller(plus)))
        value_minus = float(direction @ np.atleast_1d(controller(minus)))
        gradient[index] = (value_plus - value_minus) / (2.0 * epsilon)
    return gradient


def fgsm_perturbation(
    controller: ControllerLike,
    state: np.ndarray,
    bound: Union[float, Sequence[float]],
    maximize_control: bool = True,
) -> np.ndarray:
    """One FGSM step: ``s + bound * sign(grad)`` against the controller.

    ``maximize_control=True`` pushes the control further in its current
    direction (wasting energy and overshooting); ``False`` pushes against it
    (making the controller under-react near the safety boundary).
    """

    state = np.asarray(state, dtype=np.float64)
    bound = np.atleast_1d(np.asarray(bound, dtype=np.float64))
    gradient = _control_change_gradient(controller, state)
    sign = np.sign(gradient)
    sign[sign == 0.0] = 1.0
    if not maximize_control:
        sign = -sign
    return state + bound * sign


class FGSMAttack:
    """Evaluation-time FGSM attacker usable as a rollout perturbation.

    Parameters
    ----------
    controller:
        The controller under attack (white box, as in the paper).
    bound:
        Per-dimension perturbation bound ``Delta`` (typically 10-15 % of the
        state bound; see :func:`repro.attacks.perturbation_budget`).
    probability:
        Probability of attacking at each step (1.0 = attack every step).
    alternate:
        When ``True`` the attack direction alternates between amplifying and
        opposing the control, which destabilises controllers with large
        Lipschitz constants more effectively.
    """

    def __init__(
        self,
        controller: ControllerLike,
        bound: Union[float, Sequence[float]],
        probability: float = 1.0,
        alternate: bool = True,
    ):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        self.controller = controller
        self.bound = np.atleast_1d(np.asarray(bound, dtype=np.float64))
        self.probability = float(probability)
        self.alternate = alternate
        self._step = 0

    def __call__(self, state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        rng = get_rng(rng)
        self._step += 1
        if self.probability < 1.0 and rng.uniform() > self.probability:
            return state
        maximize = True
        if self.alternate:
            maximize = (self._step % 2) == 0
        return fgsm_perturbation(self.controller, state, self.bound, maximize_control=maximize)

    def reset(self) -> None:
        self._step = 0
