"""Stronger, system-aware adversaries and attack-budget helpers.

Besides the controller-only FGSM attack, the evaluation harness can use an
adversary that exploits the plant model: at each step it searches the
perturbation box for the observation that drives the *next true state*
closest to the unsafe boundary.  This is the "optimized adversarial attack"
interpretation in its strongest form and is used for the robustness
stress-test benchmark; Table II itself uses the FGSM attacker.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Union

import numpy as np

from repro.systems.base import ControlSystem
from repro.utils.seeding import get_rng

ControllerFn = Callable[[np.ndarray], np.ndarray]


def perturbation_budget(system: ControlSystem, fraction: float) -> np.ndarray:
    """Per-dimension perturbation bound as a fraction of the state value bound.

    The paper uses 10-15 % of the system state value bound for both the
    noise and the attack experiments.
    """

    if fraction < 0:
        raise ValueError("fraction must be non-negative")
    return fraction * system.state_scale()


def safety_margin(system: ControlSystem, state: np.ndarray) -> float:
    """Signed distance to the safe-region boundary (negative when unsafe)."""

    state = np.asarray(state, dtype=np.float64)
    lower = state - system.safe_region.low
    upper = system.safe_region.high - state
    return float(np.min(np.concatenate([lower, upper])))


class WorstCaseSampler:
    """Random-search adversary: sample candidate perturbations, keep the worst.

    At every step it samples ``candidates`` corner/uniform perturbations of
    the observation within the bound and picks the one that minimises the
    next-state safety margin under the plant model.  It is slower than FGSM
    but stronger; the number of candidates controls the compute/strength
    trade-off.
    """

    def __init__(
        self,
        system: ControlSystem,
        controller: ControllerFn,
        bound: Union[float, Sequence[float]],
        candidates: int = 8,
        include_corners: bool = True,
    ):
        if candidates < 1:
            raise ValueError("candidates must be positive")
        self.system = system
        self.controller = controller
        self.bound = np.atleast_1d(np.asarray(bound, dtype=np.float64))
        self.candidates = int(candidates)
        self.include_corners = include_corners

    def _candidate_offsets(self, rng: np.random.Generator, dimension: int) -> np.ndarray:
        offsets = [np.zeros(dimension)]
        if self.include_corners:
            # Sign-pattern corners of the perturbation box (capped for high dims).
            count = min(2**dimension, self.candidates)
            for index in range(count):
                signs = np.array([1.0 if (index >> axis) & 1 else -1.0 for axis in range(dimension)])
                offsets.append(signs * self.bound)
        while len(offsets) < self.candidates + 1:
            offsets.append(rng.uniform(-self.bound, self.bound))
        return np.asarray(offsets)

    def __call__(self, state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        rng = get_rng(rng)
        state = np.asarray(state, dtype=np.float64)
        worst_observation = state
        worst_margin = np.inf
        for offset in self._candidate_offsets(rng, state.size):
            observation = state + offset
            control = self.system.clip_control(np.atleast_1d(self.controller(observation)))
            next_state = self.system.dynamics(state, control, np.zeros(self.system.state_dim))
            margin = safety_margin(self.system, next_state)
            if margin < worst_margin:
                worst_margin = margin
                worst_observation = observation
        return worst_observation


class GradientClosedLoopAttack:
    """Gradient-based closed-loop adversary.

    Uses finite differences of the next-state safety margin with respect to
    the observation, then takes a sign step of the full budget -- an FGSM
    step on the *closed-loop* objective rather than on the controller output.
    """

    def __init__(
        self,
        system: ControlSystem,
        controller: ControllerFn,
        bound: Union[float, Sequence[float]],
        epsilon: float = 1e-4,
    ):
        self.system = system
        self.controller = controller
        self.bound = np.atleast_1d(np.asarray(bound, dtype=np.float64))
        self.epsilon = float(epsilon)

    def _margin_after(self, state: np.ndarray, observation: np.ndarray) -> float:
        control = self.system.clip_control(np.atleast_1d(self.controller(observation)))
        next_state = self.system.dynamics(state, control, np.zeros(self.system.state_dim))
        return safety_margin(self.system, next_state)

    def __call__(self, state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        state = np.asarray(state, dtype=np.float64)
        gradient = np.zeros_like(state)
        for index in range(state.size):
            plus = state.copy()
            minus = state.copy()
            plus[index] += self.epsilon
            minus[index] -= self.epsilon
            gradient[index] = (
                self._margin_after(state, plus) - self._margin_after(state, minus)
            ) / (2.0 * self.epsilon)
        sign = np.sign(gradient)
        sign[sign == 0.0] = 1.0
        # Step against the margin gradient: reduce the post-step safety margin.
        return state - self.bound * sign
