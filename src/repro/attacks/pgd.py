"""Projected gradient descent (PGD) attack: iterated FGSM.

Table II uses single-step FGSM; PGD (Madry et al.) is its standard stronger
multi-step variant and is used by the robustness stress-test ablation to
check that the robust student's advantage survives a stronger adversary.
Each step ascends the same objective as :mod:`repro.attacks.fgsm` (push the
control output as far as possible) and re-projects onto the ``Delta`` box
around the true state.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.attacks.fgsm import ControllerLike, _control_change_gradient_batch
from repro.utils.seeding import get_rng


def pgd_perturbation(
    controller: ControllerLike,
    state: np.ndarray,
    bound: Union[float, Sequence[float]],
    steps: int = 5,
    step_size_fraction: float = 0.5,
) -> np.ndarray:
    """Multi-step projected gradient attack around ``state``.

    ``step_size_fraction`` scales each ascent step relative to the bound;
    the iterate is projected back into ``[state - bound, state + bound]``
    after every step so the final perturbation respects ``Delta``.  A
    single-row wrapper over :func:`pgd_perturbation_batch`.
    """

    state = np.asarray(state, dtype=np.float64)
    return pgd_perturbation_batch(
        controller,
        state[None, :],
        bound,
        steps=steps,
        step_size_fraction=step_size_fraction,
    )[0]


def pgd_perturbation_batch(
    controller: ControllerLike,
    states: np.ndarray,
    bound: Union[float, Sequence[float]],
    steps: int = 5,
    step_size_fraction: float = 0.5,
) -> np.ndarray:
    """Row-wise :func:`pgd_perturbation` for an ``(N, state_dim)`` batch."""

    if steps <= 0:
        raise ValueError("steps must be positive")
    states = np.atleast_2d(np.asarray(states, dtype=np.float64))
    bound = np.atleast_1d(np.asarray(bound, dtype=np.float64))
    step_size = step_size_fraction * bound
    current = states.copy()
    for _ in range(steps):
        gradient = _control_change_gradient_batch(controller, current)
        sign = np.sign(gradient)
        sign[sign == 0.0] = 1.0
        current = current + step_size * sign
        current = np.clip(current, states - bound, states + bound)
    return current


class PGDAttack:
    """Evaluation-time PGD attacker usable as a rollout perturbation."""

    def __init__(
        self,
        controller: ControllerLike,
        bound: Union[float, Sequence[float]],
        steps: int = 5,
        step_size_fraction: float = 0.5,
        probability: float = 1.0,
    ):
        if not 0.0 <= probability <= 1.0:
            raise ValueError("probability must be in [0, 1]")
        if steps <= 0:
            raise ValueError("steps must be positive")
        self.controller = controller
        self.bound = np.atleast_1d(np.asarray(bound, dtype=np.float64))
        self.steps = int(steps)
        self.step_size_fraction = float(step_size_fraction)
        self.probability = float(probability)

    def __call__(self, state: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        rng = get_rng(rng)
        if self.probability < 1.0 and rng.uniform() > self.probability:
            return state
        return pgd_perturbation(
            self.controller,
            state,
            self.bound,
            steps=self.steps,
            step_size_fraction=self.step_size_fraction,
        )

    def perturb_batch(self, states: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Attack an ``(N, state_dim)`` batch of measurements at one time step."""

        rng = get_rng(rng)
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        if self.probability < 1.0:
            attacked = rng.uniform(size=len(states)) <= self.probability
            if not np.any(attacked):
                return states
            result = states.copy()
            result[attacked] = pgd_perturbation_batch(
                self.controller,
                states[attacked],
                self.bound,
                steps=self.steps,
                step_size_fraction=self.step_size_fraction,
            )
            return result
        return pgd_perturbation_batch(
            self.controller,
            states,
            self.bound,
            steps=self.steps,
            step_size_fraction=self.step_size_fraction,
        )
