"""Expert controllers.

The paper assumes that for each plant "there are often multiple candidate
control methods (experts) available", model-based or neural.  This package
provides both kinds:

* model-based experts -- LQR on a numerical linearisation, PID, polynomial
  state feedback (the controller of Sassi et al. used as κ2 of the 3-D
  system), and a feedback-linearising controller for the Van der Pol
  oscillator;
* neural experts -- DDPG-trained actors, matching how the paper obtains κ1
  and κ2 (DDPG with different hyper-parameters).

``make_default_experts`` builds the per-system expert pair used by the
examples and benchmarks: analytic experts by default (fast, deterministic)
or DDPG-trained ones when requested.
"""

from repro.experts.base import (
    Controller,
    FunctionController,
    LinearStateFeedback,
    NeuralController,
    RandomController,
    ZeroController,
)
from repro.experts.lqr import LQRController, linearize
from repro.experts.mpc import MPCController
from repro.experts.pid import PIDController
from repro.experts.polynomial import PolynomialController
from repro.experts.feedback_linearization import VanDerPolFeedbackLinearization
from repro.experts.ddpg_expert import DDPGExpertSpec, train_ddpg_expert
from repro.experts.factory import make_default_experts

__all__ = [
    "Controller",
    "NeuralController",
    "FunctionController",
    "LinearStateFeedback",
    "ZeroController",
    "RandomController",
    "LQRController",
    "linearize",
    "MPCController",
    "PIDController",
    "PolynomialController",
    "VanDerPolFeedbackLinearization",
    "DDPGExpertSpec",
    "train_ddpg_expert",
    "make_default_experts",
]
