"""LQR expert on a numerical linearisation of the plant.

The paper's model-based experts include LQR; we build one generically for
any :class:`repro.systems.ControlSystem` by linearising the discrete dynamics
around an equilibrium with central finite differences and solving the
discrete algebraic Riccati equation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.linalg import solve_discrete_are

from repro.experts.base import Controller
from repro.systems.base import ControlSystem


def linearize(
    system: ControlSystem,
    state_equilibrium: Optional[Sequence[float]] = None,
    control_equilibrium: Optional[Sequence[float]] = None,
    epsilon: float = 1e-5,
) -> Tuple[np.ndarray, np.ndarray]:
    """Finite-difference linearisation ``s(t+1) ≈ A s(t) + B u(t)`` about an equilibrium.

    Returns the discrete-time Jacobians ``(A, B)`` of the nominal (zero
    disturbance) dynamics.
    """

    x0 = (
        np.zeros(system.state_dim)
        if state_equilibrium is None
        else np.asarray(state_equilibrium, dtype=np.float64)
    )
    u0 = (
        np.zeros(system.control_dim)
        if control_equilibrium is None
        else np.asarray(control_equilibrium, dtype=np.float64)
    )
    zero_disturbance = np.zeros(system.state_dim)

    def f(state: np.ndarray, control: np.ndarray) -> np.ndarray:
        return system.dynamics(state, control, zero_disturbance)

    A = np.zeros((system.state_dim, system.state_dim))
    for index in range(system.state_dim):
        plus = x0.copy()
        minus = x0.copy()
        plus[index] += epsilon
        minus[index] -= epsilon
        A[:, index] = (f(plus, u0) - f(minus, u0)) / (2.0 * epsilon)

    B = np.zeros((system.state_dim, system.control_dim))
    for index in range(system.control_dim):
        plus = u0.copy()
        minus = u0.copy()
        plus[index] += epsilon
        minus[index] -= epsilon
        B[:, index] = (f(x0, plus) - f(x0, minus)) / (2.0 * epsilon)

    return A, B


class LQRController(Controller):
    """Infinite-horizon discrete LQR ``u = -K (s - s_eq)``.

    Parameters
    ----------
    system:
        Plant to linearise.
    state_cost, control_cost:
        ``Q`` and ``R`` matrices (scalars are expanded to scaled identities).
        A small ``R`` yields an aggressive expert (large gains, large
        Lipschitz constant); a large ``R`` yields a gentle, energy-frugal one
        -- the two flavours play the role of the paper's κ1/κ2 experts.
    """

    def __init__(
        self,
        system: ControlSystem,
        state_cost: float = 1.0,
        control_cost: float = 1.0,
        state_equilibrium: Optional[Sequence[float]] = None,
        name: str = "lqr",
    ):
        A, B = linearize(system, state_equilibrium=state_equilibrium)
        Q = np.eye(system.state_dim) * float(state_cost) if np.isscalar(state_cost) else np.asarray(state_cost)
        R = (
            np.eye(system.control_dim) * float(control_cost)
            if np.isscalar(control_cost)
            else np.asarray(control_cost)
        )
        P = solve_discrete_are(A, B, Q, R)
        self.gain = np.linalg.solve(R + B.T @ P @ B, B.T @ P @ A)
        self.A = A
        self.B = B
        self.state_equilibrium = (
            np.zeros(system.state_dim)
            if state_equilibrium is None
            else np.asarray(state_equilibrium, dtype=np.float64)
        )
        self.name = name

    def control(self, state: np.ndarray) -> np.ndarray:
        return -self.gain @ (state - self.state_equilibrium)

    def batch_control(self, states: np.ndarray) -> np.ndarray:
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        return -((states - self.state_equilibrium) @ self.gain.T)
