"""PID expert controller.

PID is one of the classic model-based experts the related work (rule-based
switching of Gong et al.) builds on.  The controller regulates a linear
combination of state components towards a setpoint and is stateful (integral
and derivative terms), so it exposes :meth:`reset` which the rollout helpers
call between episodes.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experts.base import Controller


class PIDController(Controller):
    """Single-output PID on the error ``e = setpoint - selection @ state``."""

    def __init__(
        self,
        kp: float,
        ki: float = 0.0,
        kd: float = 0.0,
        selection: Optional[Sequence[float]] = None,
        setpoint: float = 0.0,
        dt: float = 0.05,
        output_limit: Optional[float] = None,
        name: str = "pid",
    ):
        self.kp = float(kp)
        self.ki = float(ki)
        self.kd = float(kd)
        self.selection = None if selection is None else np.asarray(selection, dtype=np.float64)
        self.setpoint = float(setpoint)
        self.dt = float(dt)
        self.output_limit = output_limit
        self.name = name
        self._integral = 0.0
        self._previous_error: Optional[float] = None

    def reset(self) -> None:
        self._integral = 0.0
        self._previous_error = None

    def control(self, state: np.ndarray) -> np.ndarray:
        if self.selection is None:
            measurement = float(state[0])
        else:
            measurement = float(self.selection @ state)
        error = self.setpoint - measurement
        self._integral += error * self.dt
        derivative = 0.0 if self._previous_error is None else (error - self._previous_error) / self.dt
        self._previous_error = error
        output = self.kp * error + self.ki * self._integral + self.kd * derivative
        if self.output_limit is not None:
            output = float(np.clip(output, -self.output_limit, self.output_limit))
        return np.array([output])
