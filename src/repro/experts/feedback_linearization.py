"""Feedback-linearising experts for the feedback-linearizable plants.

For the Van der Pol oscillator, cancel the nonlinearity and impose linear
error dynamics:

``u = -(1 - s1^2) * mu * s2 + s1 - k1 * s1 - k2 * s2``

so that the closed loop behaves as ``s2(t+1) = s2 + tau (-k1 s1 - k2 s2)``.
For the inverted pendulum, cancel gravity the same way:

``u = m l^2 * (-(g / l) * sin(theta) - k1 * theta - k2 * omega)``.

With moderate gains these are strong (high safe-rate) but energy-hungry and
high-Lipschitz experts -- the κ1 role in Table I.
"""

from __future__ import annotations

import numpy as np

from repro.experts.base import Controller


class VanDerPolFeedbackLinearization(Controller):
    """Exactly-linearising state feedback with tunable linear gains."""

    def __init__(self, k1: float = 4.0, k2: float = 6.0, mu: float = 1.0, name: str = "feedback-linearization"):
        self.k1 = float(k1)
        self.k2 = float(k2)
        self.mu = float(mu)
        self.name = name

    def control(self, state: np.ndarray) -> np.ndarray:
        s1, s2 = state
        cancel = -(1.0 - s1**2) * self.mu * s2 + s1
        stabilise = -self.k1 * s1 - self.k2 * s2
        return np.array([cancel + stabilise])


class PendulumFeedbackLinearization(Controller):
    """Gravity-cancelling torque controller for the inverted pendulum.

    The closed loop becomes the linear error dynamics
    ``omega(t+1) = omega + tau * (-k1 * theta - k2 * omega)`` (up to the
    plant's damping and disturbance): strong everywhere inside the safe
    region at the price of spending torque on the gravity-cancellation term.
    """

    def __init__(
        self,
        k1: float = 8.0,
        k2: float = 4.0,
        mass: float = 1.0,
        length: float = 1.0,
        gravity: float = 9.8,
        name: str = "pendulum-feedback-linearization",
    ):
        self.k1 = float(k1)
        self.k2 = float(k2)
        self.mass = float(mass)
        self.length = float(length)
        self.gravity = float(gravity)
        self.name = name

    def control(self, state: np.ndarray) -> np.ndarray:
        theta, omega = state
        inertia = self.mass * self.length**2
        cancel = -(self.gravity / self.length) * np.sin(theta)
        stabilise = -self.k1 * theta - self.k2 * omega
        return np.array([inertia * (cancel + stabilise)])

    def batch_control(self, states: np.ndarray) -> np.ndarray:
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        theta = states[:, 0]
        omega = states[:, 1]
        inertia = self.mass * self.length**2
        cancel = -(self.gravity / self.length) * np.sin(theta)
        stabilise = -self.k1 * theta - self.k2 * omega
        return (inertia * (cancel + stabilise))[:, None]
