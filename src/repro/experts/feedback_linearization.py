"""Feedback-linearising expert for the Van der Pol oscillator.

Cancels the oscillator's nonlinearity and imposes linear error dynamics:

``u = -(1 - s1^2) * mu * s2 + s1 - k1 * s1 - k2 * s2``

so that the closed loop behaves as ``s2(t+1) = s2 + tau (-k1 s1 - k2 s2)``.
With moderate gains this is a strong (high safe-rate) but energy-hungry and
high-Lipschitz expert -- the κ1 role in Table I.
"""

from __future__ import annotations

import numpy as np

from repro.experts.base import Controller


class VanDerPolFeedbackLinearization(Controller):
    """Exactly-linearising state feedback with tunable linear gains."""

    def __init__(self, k1: float = 4.0, k2: float = 6.0, mu: float = 1.0, name: str = "feedback-linearization"):
        self.k1 = float(k1)
        self.k2 = float(k2)
        self.mu = float(mu)
        self.name = name

    def control(self, state: np.ndarray) -> np.ndarray:
        s1, s2 = state
        cancel = -(1.0 - s1**2) * self.mu * s2 + s1
        stabilise = -self.k1 * s1 - self.k2 * s2
        return np.array([cancel + stabilise])
