"""Polynomial state-feedback expert.

The paper's κ2 for the 3-D system is "a polynomial controller [25]" (Sassi,
Bartocci, Sankaranarayanan 2017) obtained from an LP-based stabilisation
procedure; its distinguishing feature in Table I is a very small Lipschitz
constant (0.72).  We reproduce the *role* of that expert with a generic
polynomial controller class plus a default low-gain stabilising polynomial
for the 3-D system (see DESIGN.md, substitution table).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experts.base import Controller

#: One monomial: (coefficient, exponents per state dimension).
Monomial = Tuple[float, Sequence[int]]


class PolynomialController(Controller):
    """Control given by one multivariate polynomial per control dimension."""

    def __init__(self, monomials_per_output: Sequence[Sequence[Monomial]], name: str = "polynomial"):
        if not monomials_per_output:
            raise ValueError("at least one output polynomial is required")
        self._polynomials: List[List[Tuple[float, np.ndarray]]] = []
        for monomials in monomials_per_output:
            parsed = [(float(coef), np.asarray(exponents, dtype=int)) for coef, exponents in monomials]
            self._polynomials.append(parsed)
        self.name = name

    def control(self, state: np.ndarray) -> np.ndarray:
        outputs = []
        for monomials in self._polynomials:
            value = 0.0
            for coefficient, exponents in monomials:
                value += coefficient * float(np.prod(state ** exponents))
            outputs.append(value)
        return np.asarray(outputs)

    def degree(self) -> int:
        """Maximum total degree across all outputs."""

        return max(int(exponents.sum()) for monomials in self._polynomials for _, exponents in monomials)

    def coefficients(self) -> Dict[int, List[Monomial]]:
        return {
            index: [(coef, exponents.tolist()) for coef, exponents in monomials]
            for index, monomials in enumerate(self._polynomials)
        }

    # ------------------------------------------------------------------
    @classmethod
    def linear(cls, gains: Sequence[float], name: str = "polynomial-linear") -> "PolynomialController":
        """Pure linear feedback ``u = -sum_i gains[i] * s_i`` as a polynomial."""

        gains = np.asarray(gains, dtype=np.float64)
        dimension = gains.size
        monomials = []
        for index, gain in enumerate(gains):
            exponents = np.zeros(dimension, dtype=int)
            exponents[index] = 1
            monomials.append((-float(gain), exponents))
        return cls([monomials], name=name)

    @classmethod
    def default_three_dimensional(cls) -> "PolynomialController":
        """Low-gain stabilising polynomial for the 3-D system.

        ``u = -(0.25 x + 0.55 y + 0.55 z) - 0.25 z^2`` -- the quadratic term
        compensates the ``0.5 z^2`` drift in the x-dynamics; the gains are
        kept small so the controller's Lipschitz constant over the unit box
        is below one, mirroring the paper's κ2 (L = 0.72).
        """

        linear_part = [
            (-0.25, (1, 0, 0)),
            (-0.55, (0, 1, 0)),
            (-0.55, (0, 0, 1)),
            (-0.25, (0, 0, 2)),
        ]
        return cls([linear_part], name="polynomial-3d")
