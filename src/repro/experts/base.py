"""Controller interface and generic controller wrappers.

A controller is a mapping from the observed state to a control command (the
plant clips the command to its bound).  Controllers are used in four places:
as experts fed to the adaptive mixer, as the teacher during distillation, as
the student produced by distillation, and as baselines in the evaluation
harness -- so the interface is deliberately minimal.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.nn.network import MLP
from repro.utils.seeding import RngLike, get_rng


class Controller:
    """Base controller: callable mapping a state vector to a control vector."""

    #: Human-readable name used in result tables.
    name: str = "controller"

    def control(self, state: np.ndarray) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def __call__(self, state: Sequence[float]) -> np.ndarray:
        state = np.asarray(state, dtype=np.float64)
        return np.atleast_1d(np.asarray(self.control(state), dtype=np.float64))

    def reset(self) -> None:
        """Clear any internal state (stateful controllers such as PID)."""

    def batch_control(self, states: np.ndarray) -> np.ndarray:
        """Vectorised evaluation, default loops over rows."""

        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        return np.stack([self(state) for state in states], axis=0)


class FunctionController(Controller):
    """Wrap any plain function ``state -> control`` as a controller."""

    def __init__(self, function: Callable[[np.ndarray], Sequence[float]], name: str = "function"):
        self._function = function
        self.name = name

    def control(self, state: np.ndarray) -> np.ndarray:
        return np.atleast_1d(np.asarray(self._function(state), dtype=np.float64))


class LinearStateFeedback(Controller):
    """Linear state feedback ``u = -K s`` (optionally with an offset)."""

    def __init__(self, gain: Sequence[Sequence[float]], offset: Optional[Sequence[float]] = None, name: str = "linear"):
        self.gain = np.atleast_2d(np.asarray(gain, dtype=np.float64))
        self.offset = (
            np.zeros(self.gain.shape[0]) if offset is None else np.asarray(offset, dtype=np.float64)
        )
        self.name = name

    def control(self, state: np.ndarray) -> np.ndarray:
        return -self.gain @ state + self.offset

    def batch_control(self, states: np.ndarray) -> np.ndarray:
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        return -(states @ self.gain.T) + self.offset


class NeuralController(Controller):
    """Wrap an :class:`repro.nn.MLP` (optionally with output scaling) as a controller.

    ``output_low``/``output_high`` rescale a tanh-squashed network output to
    the control bound; when omitted the raw network output is used, which is
    the convention for the distilled student network κ*.
    """

    def __init__(
        self,
        network: MLP,
        output_low: Optional[Sequence[float]] = None,
        output_high: Optional[Sequence[float]] = None,
        name: str = "neural",
    ):
        self.network = network
        self.name = name
        if (output_low is None) != (output_high is None):
            raise ValueError("output_low and output_high must be provided together")
        if output_low is not None:
            self.output_low = np.asarray(output_low, dtype=np.float64)
            self.output_high = np.asarray(output_high, dtype=np.float64)
            self._scale = (self.output_high - self.output_low) / 2.0
            self._offset = (self.output_high + self.output_low) / 2.0
        else:
            self.output_low = None
            self.output_high = None
            self._scale = None
            self._offset = None

    def control(self, state: np.ndarray) -> np.ndarray:
        output = np.atleast_1d(self.network.predict(state))
        if self._scale is not None:
            output = output * self._scale + self._offset
        return output

    def batch_control(self, states: np.ndarray) -> np.ndarray:
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        outputs = np.atleast_2d(self.network.predict(states))
        if self._scale is not None:
            outputs = outputs * self._scale + self._offset
        return outputs


class ZeroController(Controller):
    """Always outputs zero control; the do-nothing baseline used in tests."""

    name = "zero"

    def __init__(self, control_dim: int = 1):
        self.control_dim = int(control_dim)

    def control(self, state: np.ndarray) -> np.ndarray:
        return np.zeros(self.control_dim)


class RandomController(Controller):
    """Uniformly random control inside a bound; a worst-case style baseline."""

    name = "random"

    def __init__(self, low: Sequence[float], high: Sequence[float], rng: RngLike = None):
        self.low = np.atleast_1d(np.asarray(low, dtype=np.float64))
        self.high = np.atleast_1d(np.asarray(high, dtype=np.float64))
        self._rng = get_rng(rng)

    def control(self, state: np.ndarray) -> np.ndarray:
        return self._rng.uniform(self.low, self.high)
