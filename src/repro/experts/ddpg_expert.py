"""DDPG-trained neural experts.

The paper obtains its experts with "DDPG with different hyper-parameters".
:func:`train_ddpg_expert` wraps the full loop: build a control environment on
the plant, run :class:`repro.rl.DDPGTrainer` with the given spec, and return
the trained actor wrapped as a :class:`repro.experts.Controller`.

Training an expert from scratch takes a few minutes in pure NumPy, so the
fast path of :func:`repro.experts.make_default_experts` uses analytic experts
instead; the DDPG path is exercised by the integration tests (with tiny
budgets) and available to the benchmarks through ``REPRO_SCALE=paper``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from repro.experts.base import Controller
from repro.rl.ddpg import DDPGConfig, DDPGTrainer
from repro.rl.env import ControlEnv, RewardFunction
from repro.rl.policies import DeterministicMLPPolicy
from repro.systems.base import ControlSystem
from repro.utils.seeding import RngLike


@dataclass
class DDPGExpertSpec:
    """Hyper-parameters distinguishing one DDPG expert from another."""

    hidden_sizes: Tuple[int, ...] = (64, 64)
    actor_lr: float = 1e-3
    critic_lr: float = 1e-3
    episodes: int = 60
    exploration_noise: float = 0.1
    gamma: float = 0.99
    state_weight: float = 1.0
    energy_weight: float = 0.02
    seed: Optional[int] = None
    name: str = "ddpg-expert"

    def to_config(self) -> DDPGConfig:
        return DDPGConfig(
            episodes=self.episodes,
            gamma=self.gamma,
            actor_lr=self.actor_lr,
            critic_lr=self.critic_lr,
            exploration_noise=self.exploration_noise,
            hidden_sizes=self.hidden_sizes,
            seed=self.seed,
        )


class DDPGExpertController(Controller):
    """A trained deterministic actor exposed through the Controller interface."""

    def __init__(self, actor: DeterministicMLPPolicy, name: str = "ddpg-expert"):
        self.actor = actor
        self.name = name

    def control(self, state: np.ndarray) -> np.ndarray:
        return self.actor.act(state, noise_scale=0.0)

    def batch_control(self, states: np.ndarray) -> np.ndarray:
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        raw = self.actor.net.predict(states)
        return raw * self.actor._scale + self.actor._offset

    @property
    def network(self):
        """Underlying MLP (used for Lipschitz-constant reporting)."""

        return self.actor.net


def train_ddpg_expert(
    system: ControlSystem,
    spec: Optional[DDPGExpertSpec] = None,
    rng: RngLike = None,
    episodes: Optional[int] = None,
) -> DDPGExpertController:
    """Train one neural expert on ``system`` and return it as a controller.

    ``episodes`` overrides the spec's budget, which the tests use to keep
    runtime bounded.
    """

    spec = spec if spec is not None else DDPGExpertSpec()
    reward = RewardFunction(
        punishment=-100.0,
        energy_weight=spec.energy_weight,
        survival_bonus=1.0,
        state_weight=spec.state_weight,
    )
    env = ControlEnv(system, reward=reward, rng=rng if rng is not None else spec.seed)
    trainer = DDPGTrainer(env, config=spec.to_config(), rng=rng)
    trainer.train(episodes=episodes)
    return DDPGExpertController(trainer.actor, name=spec.name)
