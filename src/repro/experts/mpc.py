"""Sampling-based model-predictive-control expert.

The paper lists model-predictive control as one of the classic model-based
experts Cocktail can mix ("They could be based on well-established
model-based approaches, such as model-predictive control (MPC) or linear
quadratic regulator (LQR)").  This module provides a derivative-free MPC
that only needs the plant's ``dynamics`` function:

at every step it samples candidate control sequences (a shrinking-variance
cross-entropy-method loop), rolls each out over the prediction horizon on
the nominal (disturbance-free) model, scores them with a quadratic
state/control cost plus a large penalty for leaving the safe region, and
applies the first control of the best sequence.

It is slower than the analytic experts (hundreds of model rollouts per
control step) and therefore not part of ``make_default_experts``, but it is
a drop-in expert for the mixing step and is exercised by the unit tests and
the ``examples`` on shortened horizons.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experts.base import Controller
from repro.systems.base import ControlSystem
from repro.utils.seeding import RngLike, get_rng


class MPCController(Controller):
    """Cross-entropy-method MPC over the plant's nominal model.

    Parameters
    ----------
    system:
        The plant whose ``dynamics`` are used as the prediction model.
    horizon:
        Prediction horizon (number of lookahead steps).
    num_samples:
        Candidate control sequences evaluated per CEM iteration.
    num_iterations:
        CEM refinement iterations per control step.
    elite_fraction:
        Fraction of best candidates used to refit the sampling distribution.
    state_cost, control_cost:
        Quadratic stage-cost weights ``x'Qx`` (scalar => scaled identity)
        and ``u'Ru``.
    unsafe_penalty:
        Cost added for every predicted step outside the safe region.
    """

    def __init__(
        self,
        system: ControlSystem,
        horizon: int = 10,
        num_samples: int = 64,
        num_iterations: int = 2,
        elite_fraction: float = 0.2,
        state_cost: float = 1.0,
        control_cost: float = 0.01,
        unsafe_penalty: float = 1e4,
        rng: RngLike = None,
        name: str = "mpc",
    ):
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if num_samples < 4:
            raise ValueError("num_samples must be at least 4")
        if not 0.0 < elite_fraction <= 1.0:
            raise ValueError("elite_fraction must be in (0, 1]")
        self.system = system
        self.horizon = int(horizon)
        self.num_samples = int(num_samples)
        self.num_iterations = max(1, int(num_iterations))
        self.num_elites = max(2, int(round(num_samples * elite_fraction)))
        self.state_cost = np.eye(system.state_dim) * state_cost if np.isscalar(state_cost) else np.asarray(state_cost)
        self.control_cost = (
            np.eye(system.control_dim) * control_cost if np.isscalar(control_cost) else np.asarray(control_cost)
        )
        self.unsafe_penalty = float(unsafe_penalty)
        self._rng = get_rng(rng)
        self.name = name
        self._warm_start: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def reset(self) -> None:
        self._warm_start = None

    def _sequence_cost(self, state: np.ndarray, controls: np.ndarray) -> float:
        """Quadratic cost of one control sequence on the nominal model."""

        cost = 0.0
        current = state
        zero_disturbance = np.zeros(self.system.state_dim)
        for step in range(self.horizon):
            control = self.system.clip_control(controls[step])
            current = self.system.dynamics(current, control, zero_disturbance)
            cost += float(current @ self.state_cost @ current)
            cost += float(control @ self.control_cost @ control)
            if not self.system.is_safe(current):
                cost += self.unsafe_penalty
        return cost

    def control(self, state: np.ndarray) -> np.ndarray:
        low = self.system.control_bound.low
        high = self.system.control_bound.high
        span = (high - low) / 2.0

        if self._warm_start is not None:
            mean = np.vstack([self._warm_start[1:], self._warm_start[-1:]])
        else:
            mean = np.zeros((self.horizon, self.system.control_dim))
        std = np.broadcast_to(span, mean.shape).astype(np.float64).copy()

        best_sequence = mean
        best_cost = np.inf
        for _ in range(self.num_iterations):
            samples = self._rng.normal(mean, std, size=(self.num_samples, self.horizon, self.system.control_dim))
            samples = np.clip(samples, low, high)
            costs = np.array([self._sequence_cost(state, sample) for sample in samples])
            elite_index = np.argsort(costs)[: self.num_elites]
            elites = samples[elite_index]
            mean = elites.mean(axis=0)
            std = elites.std(axis=0) + 1e-6
            if costs[elite_index[0]] < best_cost:
                best_cost = float(costs[elite_index[0]])
                best_sequence = samples[elite_index[0]]

        self._warm_start = best_sequence
        return self.system.clip_control(best_sequence[0])
