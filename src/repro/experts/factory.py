"""Default expert pairs (κ1, κ2) for the registered scenarios.

The paper's experts are deliberately *not* optimal -- they differ in strength
across the state space, which is what the adaptive mixer exploits.  Two
flavours are provided:

* ``mode="analytic"`` (default) -- deterministic model-based experts with the
  same qualitative contrast the paper describes: κ1 aggressive / robust /
  energy-hungry, κ2 gentle / energy-frugal / less safe near the boundary of
  ``X0``.  These run instantly, keeping the examples, tests and quick
  benchmark mode tractable on a laptop.
* ``mode="ddpg"`` -- faithful to the paper: two DDPG actors trained with
  different hyper-parameters (hidden sizes, exploration, reward weights).

Which analytic pair a plant gets is decided by the scenario catalog
(:mod:`repro.scenarios`): every :class:`~repro.scenarios.ScenarioSpec`
carries an ``expert_factory`` hook, and :func:`make_default_experts` looks
the plant up by its ``name``.  The per-plant builders below are the hooks
the built-in catalog registers; a custom plant gets default experts by
registering its own scenario instead of editing this module.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experts.base import Controller, LinearStateFeedback
from repro.experts.ddpg_expert import DDPGExpertSpec, train_ddpg_expert
from repro.experts.feedback_linearization import (
    PendulumFeedbackLinearization,
    VanDerPolFeedbackLinearization,
)
from repro.experts.lqr import LQRController
from repro.experts.polynomial import PolynomialController
from repro.systems.base import ControlSystem
from repro.utils.seeding import RngLike


def make_default_experts(
    system: ControlSystem,
    mode: str = "analytic",
    rng: RngLike = None,
    ddpg_episodes: Optional[int] = None,
) -> List[Controller]:
    """Return the expert pair ``[kappa1, kappa2]`` for a registered scenario."""

    if mode not in ("analytic", "ddpg"):
        raise ValueError("mode must be 'analytic' or 'ddpg'")
    if mode == "ddpg":
        return _ddpg_experts(system, rng=rng, episodes=ddpg_episodes)

    from repro.scenarios import find_scenario

    spec = find_scenario(getattr(system, "name", None))
    if spec is None:
        raise ValueError(
            f"no default experts defined for system {getattr(system, 'name', system)!r}; "
            "register a scenario with an expert_factory (see repro.scenarios)"
        )
    return spec.make_experts(system)


# ----------------------------------------------------------------------
# Analytic expert pairs (registered as scenario expert_factory hooks)
# ----------------------------------------------------------------------
def vanderpol_experts(system) -> List[Controller]:
    # kappa1: feedback linearisation -- strong everywhere, high control effort,
    # high Lipschitz constant (the |1 - s1^2| term grows with |s1|).
    kappa1 = VanDerPolFeedbackLinearization(k1=4.0, k2=6.0, mu=system.mu, name="kappa1")
    # kappa2: weak linear feedback, cheap but it neither cancels the
    # nonlinearity nor reacts strongly near the boundary of X0, so
    # trajectories that start near the corners can escape -- a weaker,
    # energy-frugal expert.
    kappa2 = LinearStateFeedback([[0.4, 0.6]], name="kappa2")
    return [kappa1, kappa2]


def three_dimensional_experts(system) -> List[Controller]:
    # kappa1: aggressive LQR (cheap control penalty -> larger gains).
    kappa1 = LQRController(system, state_cost=1.0, control_cost=0.05, name="kappa1")
    # kappa2: the polynomial controller of Sassi et al. -- low gains, very
    # small Lipschitz constant (the paper reports L = 0.72 for it).
    kappa2 = PolynomialController.default_three_dimensional()
    kappa2.name = "kappa2"
    return [kappa1, kappa2]


def cartpole_experts(system) -> List[Controller]:
    # kappa1: aggressive LQR balancing both cart position and pole angle.
    kappa1 = LQRController(system, state_cost=1.0, control_cost=0.05, name="kappa1")
    # kappa2: angle-only feedback (u = 18*theta + 2.5*theta_dot) -- keeps the
    # pole up cheaply but ignores the cart position, so the cart can drift
    # out of [-2.4, 2.4] on long horizons.
    kappa2 = LinearStateFeedback([[0.0, 0.0, -18.0, -2.5]], name="kappa2")
    return [kappa1, kappa2]


def pendulum_experts(system) -> List[Controller]:
    # kappa1: feedback linearisation -- cancels gravity exactly, so the closed
    # loop is linear and strongly stable everywhere in X, at a high torque
    # cost (the cancellation term alone is ~g*sin(theta)).
    kappa1 = PendulumFeedbackLinearization(
        k1=8.0,
        k2=4.0,
        mass=system.mass,
        length=system.length,
        gravity=system.gravity,
        name="kappa1",
    )
    # kappa2: plain linear feedback with just enough angle gain to dominate
    # gravity near the origin; its stability margin shrinks as |theta| grows
    # (9.8*sin(theta) flattens, 12*theta does not), so it is frugal but
    # noticeably weaker from the corners of X0.
    kappa2 = LinearStateFeedback([[12.0, 2.5]], name="kappa2")
    return [kappa1, kappa2]


def acc_experts(system) -> List[Controller]:
    # kappa1: aggressive LQR on the exact (affine) model -- tight gap
    # regulation, high commanded-acceleration effort.
    kappa1 = LQRController(system, state_cost=1.0, control_cost=0.05, name="kappa1")
    # kappa2: comfort-tuned LQR (expensive control penalty -> small gains,
    # low Lipschitz constant): smooth, frugal, slower to arrest a closing
    # gap from the edge of X0.
    kappa2 = LQRController(system, state_cost=1.0, control_cost=8.0, name="kappa2")
    return [kappa1, kappa2]


# ----------------------------------------------------------------------
# DDPG expert pairs (paper-faithful)
# ----------------------------------------------------------------------
def _ddpg_experts(system: ControlSystem, rng: RngLike = None, episodes: Optional[int] = None) -> List[Controller]:
    spec1 = DDPGExpertSpec(
        hidden_sizes=(64, 64),
        actor_lr=1e-3,
        exploration_noise=0.15,
        state_weight=1.0,
        energy_weight=0.01,
        seed=0,
        name="kappa1",
    )
    spec2 = DDPGExpertSpec(
        hidden_sizes=(32, 32),
        actor_lr=3e-4,
        exploration_noise=0.05,
        state_weight=0.5,
        energy_weight=0.05,
        seed=1,
        name="kappa2",
    )
    kappa1 = train_ddpg_expert(system, spec1, rng=rng, episodes=episodes)
    kappa2 = train_ddpg_expert(system, spec2, rng=rng, episodes=episodes)
    return [kappa1, kappa2]
