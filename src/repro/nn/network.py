"""Network containers: ``Sequential`` and the workhorse ``MLP``."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autodiff import Tensor
from repro.nn.layers import Activation, Identity, Linear, Module, make_activation


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, layers: Sequence[Module]):
        self.layers = list(layers)

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for layer in self.layers:
            output = layer(output)
        return output

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class MLP(Module):
    """Multi-layer perceptron with a configurable output activation.

    This is the architecture used everywhere in the reproduction: policy
    networks, value/critic networks, neural experts and the distilled
    student controller are all ``MLP`` instances with different sizes.

    Parameters
    ----------
    input_dim, output_dim:
        Sizes of the input (system state) and output (control / value).
    hidden_sizes:
        Widths of the hidden layers, e.g. ``(32, 32)``.
    activation:
        Name of the hidden activation (``"tanh"``, ``"relu"``, ``"sigmoid"``).
    output_activation:
        Name of the final activation, default ``"identity"``.  Policies that
        need bounded outputs use ``"tanh"`` followed by explicit scaling.
    seed:
        Seed for the weight initialisation generator.
    """

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        hidden_sizes: Sequence[int] = (32, 32),
        activation: str = "tanh",
        output_activation: str = "identity",
        seed: Optional[int] = None,
    ):
        if input_dim <= 0 or output_dim <= 0:
            raise ValueError("MLP dimensions must be positive")
        rng = np.random.default_rng(seed)
        self.input_dim = input_dim
        self.output_dim = output_dim
        self.hidden_sizes = tuple(int(size) for size in hidden_sizes)
        self.activation_name = activation
        self.output_activation_name = output_activation

        sizes = [input_dim, *self.hidden_sizes, output_dim]
        layers: List[Module] = []
        for index in range(len(sizes) - 1):
            layers.append(Linear(sizes[index], sizes[index + 1], rng=rng))
            is_last = index == len(sizes) - 2
            layers.append(make_activation(output_activation if is_last else activation))
        self.layers = layers

    # ------------------------------------------------------------------
    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for layer in self.layers:
            output = layer(output)
        return output

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Plain-array forward pass (no graph), accepting 1-D or 2-D inputs."""

        array = np.asarray(inputs, dtype=np.float64)
        single = array.ndim == 1
        if single:
            array = array[None, :]
        output = array
        for layer in self.layers:
            if isinstance(layer, Linear):
                output = output @ layer.weight.data + layer.bias.data
            elif isinstance(layer, Activation):
                output = _apply_activation_array(layer, output)
            else:  # pragma: no cover - defensive
                output = layer(Tensor(output)).numpy()
        return output[0] if single else output

    # ------------------------------------------------------------------
    def linear_layers(self) -> List[Linear]:
        return [layer for layer in self.layers if isinstance(layer, Linear)]

    def activations(self) -> List[Activation]:
        return [layer for layer in self.layers if isinstance(layer, Activation)]

    def clone(self) -> "MLP":
        """Deep copy with identical weights (used for target networks)."""

        copy = MLP(
            self.input_dim,
            self.output_dim,
            hidden_sizes=self.hidden_sizes,
            activation=self.activation_name,
            output_activation=self.output_activation_name,
        )
        copy.load_state_dict(self.state_dict())
        return copy

    def architecture(self) -> dict:
        """Describe the architecture as a JSON-serialisable dictionary."""

        return {
            "input_dim": self.input_dim,
            "output_dim": self.output_dim,
            "hidden_sizes": list(self.hidden_sizes),
            "activation": self.activation_name,
            "output_activation": self.output_activation_name,
        }

    @classmethod
    def from_architecture(cls, spec: dict) -> "MLP":
        return cls(
            spec["input_dim"],
            spec["output_dim"],
            hidden_sizes=spec.get("hidden_sizes", (32, 32)),
            activation=spec.get("activation", "tanh"),
            output_activation=spec.get("output_activation", "identity"),
        )


def _apply_activation_array(activation: Activation, values: np.ndarray) -> np.ndarray:
    name = activation.name
    if name == "relu":
        return np.maximum(values, 0.0)
    if name == "tanh":
        return np.tanh(values)
    if name == "sigmoid":
        return 1.0 / (1.0 + np.exp(-values))
    return values


def soft_update(target: Module, source: Module, tau: float) -> None:
    """Polyak averaging ``target <- (1 - tau) * target + tau * source``."""

    if not 0.0 <= tau <= 1.0:
        raise ValueError("tau must be in [0, 1]")
    target_params = target.parameters()
    source_params = source.parameters()
    if len(target_params) != len(source_params):
        raise ValueError("target and source have different parameter counts")
    for target_param, source_param in zip(target_params, source_params):
        target_param.data = (1.0 - tau) * target_param.data + tau * source_param.data


def hard_update(target: Module, source: Module) -> None:
    """Copy parameters from ``source`` into ``target``."""

    soft_update(target, source, tau=1.0)
