"""Network containers: ``Sequential`` and the workhorse ``MLP``."""

from __future__ import annotations

import weakref
from typing import List, Optional, Sequence

import numpy as np

from repro.autodiff import Tensor
from repro.nn.layers import Activation, Identity, Linear, Module, make_activation
from repro.utils.buffers import global_arena


class Sequential(Module):
    """Apply a list of modules in order."""

    def __init__(self, layers: Sequence[Module]):
        self.layers = list(layers)

    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for layer in self.layers:
            output = layer(output)
        return output

    def __iter__(self):
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)


class MLP(Module):
    """Multi-layer perceptron with a configurable output activation.

    This is the architecture used everywhere in the reproduction: policy
    networks, value/critic networks, neural experts and the distilled
    student controller are all ``MLP`` instances with different sizes.

    Parameters
    ----------
    input_dim, output_dim:
        Sizes of the input (system state) and output (control / value).
    hidden_sizes:
        Widths of the hidden layers, e.g. ``(32, 32)``.
    activation:
        Name of the hidden activation (``"tanh"``, ``"relu"``, ``"sigmoid"``).
    output_activation:
        Name of the final activation, default ``"identity"``.  Policies that
        need bounded outputs use ``"tanh"`` followed by explicit scaling.
    seed:
        Seed for the weight initialisation generator.
    """

    def __init__(
        self,
        input_dim: int,
        output_dim: int,
        hidden_sizes: Sequence[int] = (32, 32),
        activation: str = "tanh",
        output_activation: str = "identity",
        seed: Optional[int] = None,
    ):
        if input_dim <= 0 or output_dim <= 0:
            raise ValueError("MLP dimensions must be positive")
        rng = np.random.default_rng(seed)
        self.input_dim = input_dim
        self.output_dim = output_dim
        self.hidden_sizes = tuple(int(size) for size in hidden_sizes)
        self.activation_name = activation
        self.output_activation_name = output_activation

        sizes = [input_dim, *self.hidden_sizes, output_dim]
        layers: List[Module] = []
        for index in range(len(sizes) - 1):
            layers.append(Linear(sizes[index], sizes[index + 1], rng=rng))
            is_last = index == len(sizes) - 2
            layers.append(make_activation(output_activation if is_last else activation))
        self.layers = layers

    # ------------------------------------------------------------------
    def forward(self, inputs: Tensor) -> Tensor:
        output = inputs
        for layer in self.layers:
            output = layer(output)
        return output

    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Plain-array forward pass (no graph), accepting 1-D or 2-D inputs."""

        array = np.asarray(inputs, dtype=np.float64)
        single = array.ndim == 1
        if single:
            array = array[None, :]
        output = array
        for layer in self.layers:
            if isinstance(layer, Linear):
                output = output @ layer.weight.data + layer.bias.data
            elif isinstance(layer, Activation):
                output = _apply_activation_array(layer, output)
            else:  # pragma: no cover - defensive
                output = layer(Tensor(output)).numpy()
        return output[0] if single else output

    def predict_block(self, inputs: np.ndarray) -> np.ndarray:
        """Forward pass for one fixed evaluation block, reusing layer buffers.

        Bit-identical to :meth:`predict` on 2-D input (same float64 ops in
        the same order, run with ``out=`` into per-layer scratch), but the
        per-layer activations are allocated once per ``(rows, width)`` and
        reused across every subsequent block -- the allocation pattern the
        blocked verification evaluator (:func:`repro.verification.intervals.
        apply_row_blocked`) hits thousands of times per run.

        The returned array is **transient arena scratch**: it is only valid
        until the next ``predict_block`` call, so callers must copy anything
        they keep (``apply_row_blocked`` copies each block into its fresh
        output).
        """

        steps, buffers_by_rows = _forward_plan(self)
        rows = inputs.shape[0]
        buffers = buffers_by_rows.get(rows)
        if buffers is None:
            buffers = [
                global_arena.take(f"mlp.forward.{rows}.{index}", (rows, payload[0].shape[1]))
                for index, (kind, payload) in enumerate(steps)
                if kind == "linear"
            ]
            buffers_by_rows[rows] = buffers
        output = inputs
        position = 0
        for kind, payload in steps:
            if kind == "linear":
                weight, bias = payload
                buffer = buffers[position]
                position += 1
                np.matmul(output, weight, out=buffer)
                np.add(buffer, bias, out=buffer)
                output = buffer
            elif output is inputs:  # defensive: never mutate caller rows
                output = _apply_activation_array_named(payload, output)
            else:
                _apply_activation_array_inplace(payload, output)
        return output

    # ------------------------------------------------------------------
    def linear_layers(self) -> List[Linear]:
        return [layer for layer in self.layers if isinstance(layer, Linear)]

    def activations(self) -> List[Activation]:
        return [layer for layer in self.layers if isinstance(layer, Activation)]

    def clone(self) -> "MLP":
        """Deep copy with identical weights (used for target networks)."""

        copy = MLP(
            self.input_dim,
            self.output_dim,
            hidden_sizes=self.hidden_sizes,
            activation=self.activation_name,
            output_activation=self.output_activation_name,
        )
        copy.load_state_dict(self.state_dict())
        return copy

    def architecture(self) -> dict:
        """Describe the architecture as a JSON-serialisable dictionary."""

        return {
            "input_dim": self.input_dim,
            "output_dim": self.output_dim,
            "hidden_sizes": list(self.hidden_sizes),
            "activation": self.activation_name,
            "output_activation": self.output_activation_name,
        }

    @classmethod
    def from_architecture(cls, spec: dict) -> "MLP":
        return cls(
            spec["input_dim"],
            spec["output_dim"],
            hidden_sizes=spec.get("hidden_sizes", (32, 32)),
            activation=spec.get("activation", "tanh"),
            output_activation=spec.get("output_activation", "identity"),
        )


def _apply_activation_array(activation: Activation, values: np.ndarray) -> np.ndarray:
    return _apply_activation_array_named(activation.name, values)


def _apply_activation_array_named(name: str, values: np.ndarray) -> np.ndarray:
    if name == "relu":
        return np.maximum(values, 0.0)
    if name == "tanh":
        return np.tanh(values)
    if name == "sigmoid":
        return 1.0 / (1.0 + np.exp(-values))
    return values


def _apply_activation_array_inplace(name: str, values: np.ndarray) -> None:
    """In-place activation: the same float64 op sequence as the allocating
    form (``np.divide(1.0, x)`` is bitwise ``1.0 / x``), so results cannot
    drift a bit."""

    if name == "relu":
        np.maximum(values, 0.0, out=values)
    elif name == "tanh":
        np.tanh(values, out=values)
    elif name == "sigmoid":
        np.negative(values, out=values)
        np.exp(values, out=values)
        np.add(values, 1.0, out=values)
        np.divide(1.0, values, out=values)
    # identity: unchanged


#: Per-MLP blocked-forward plans (hoisted weight views + per-row-count layer
#: buffers), invalidated by weight-array identity: the repo's optimizers
#: always rebind ``parameter.data`` to fresh arrays and the cached plan keeps
#: the old arrays alive, so an identity match proves the weights are current.
_FORWARD_PLAN_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


def _forward_plan(network: "MLP"):
    refs = []
    for layer in network.layers:
        if isinstance(layer, Linear):
            refs.append(layer.weight.data)
            refs.append(layer.bias.data)
    cached = _FORWARD_PLAN_CACHE.get(network)
    if cached is not None:
        cached_refs, steps, buffers_by_rows = cached
        if len(cached_refs) == len(refs) and all(
            left is right for left, right in zip(cached_refs, refs)
        ):
            return steps, buffers_by_rows
    steps = []
    for layer in network.layers:
        if isinstance(layer, Linear):
            steps.append(("linear", (layer.weight.data, layer.bias.data)))
        elif isinstance(layer, Activation):
            steps.append(("activation", layer.name))
    buffers_by_rows: dict = {}
    try:
        _FORWARD_PLAN_CACHE[network] = (refs, steps, buffers_by_rows)
    except TypeError:  # pragma: no cover - non-weakref-able stand-ins
        pass
    return steps, buffers_by_rows


def soft_update(target: Module, source: Module, tau: float) -> None:
    """Polyak averaging ``target <- (1 - tau) * target + tau * source``."""

    if not 0.0 <= tau <= 1.0:
        raise ValueError("tau must be in [0, 1]")
    target_params = target.parameters()
    source_params = source.parameters()
    if len(target_params) != len(source_params):
        raise ValueError("target and source have different parameter counts")
    for target_param, source_param in zip(target_params, source_params):
        target_param.data = (1.0 - tau) * target_param.data + tau * source_param.data


def hard_update(target: Module, source: Module) -> None:
    """Copy parameters from ``source`` into ``target``."""

    soft_update(target, source, tau=1.0)
