"""A small neural-network library on top of :mod:`repro.autodiff`.

Provides exactly what the Cocktail reproduction needs: fully-connected
networks with ReLU/Tanh/Sigmoid activations, MSE/Huber losses, SGD and Adam
optimisers, parameter serialisation, and the Lipschitz-constant computation
described in the paper's footnote 1 (product of per-layer operator norms,
with a 1/4 factor for sigmoid layers).
"""

from repro.nn.layers import Activation, Identity, Linear, Module, ReLU, Sigmoid, Tanh
from repro.nn.network import MLP, Sequential
from repro.nn.optim import SGD, Adam, Optimizer
from repro.nn.lipschitz import (
    empirical_lipschitz,
    layer_lipschitz,
    network_lipschitz,
    network_weights_digest,
    spectral_norm,
)
from repro.nn.serialization import load_state_dict, save_state_dict, state_dict_from_module

__all__ = [
    "Module",
    "Linear",
    "Activation",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "MLP",
    "Sequential",
    "Optimizer",
    "SGD",
    "Adam",
    "network_lipschitz",
    "network_weights_digest",
    "layer_lipschitz",
    "empirical_lipschitz",
    "spectral_norm",
    "save_state_dict",
    "load_state_dict",
    "state_dict_from_module",
]
