"""Saving and loading network parameters.

Networks are persisted as ``.npz`` archives containing the flattened state
dictionary plus a JSON architecture description, so an :class:`repro.nn.MLP`
can be reconstructed without the original Python object.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from repro.nn.layers import Module
from repro.nn.network import MLP

PathLike = Union[str, Path]

_ARCH_KEY = "__architecture_json__"


def state_dict_from_module(module: Module) -> Dict[str, np.ndarray]:
    """Convenience wrapper around :meth:`Module.state_dict`."""

    return module.state_dict()


def save_state_dict(network: MLP, path: PathLike) -> Path:
    """Persist an MLP (weights + architecture) to ``path`` as ``.npz``."""

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = dict(network.state_dict())
    arch = json.dumps(network.architecture())
    payload[_ARCH_KEY] = np.frombuffer(arch.encode("utf-8"), dtype=np.uint8)
    np.savez(path, **payload)
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_state_dict(path: PathLike) -> MLP:
    """Load an MLP saved by :func:`save_state_dict`."""

    path = Path(path)
    if not path.exists() and path.with_suffix(path.suffix + ".npz").exists():
        path = path.with_suffix(path.suffix + ".npz")
    with np.load(path) as archive:
        arch_bytes = archive[_ARCH_KEY].tobytes()
        spec = json.loads(arch_bytes.decode("utf-8"))
        network = MLP.from_architecture(spec)
        state = {key: archive[key] for key in archive.files if key != _ARCH_KEY}
    network.load_state_dict(state)
    return network
