"""Layer primitives: modules, fully-connected layers, and activations."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

import numpy as np

from repro.autodiff import Tensor


class Module:
    """Base class for anything that owns parameters.

    Sub-modules are discovered automatically from instance attributes, so a
    network simply assigns its layers to attributes (or uses
    :class:`repro.nn.network.Sequential`).
    """

    def forward(self, inputs: Tensor) -> Tensor:
        raise NotImplementedError

    def __call__(self, *inputs) -> Tensor:
        return self.forward(*[Tensor.ensure(value) for value in inputs])

    # -- parameter management ------------------------------------------------
    def parameters(self) -> List[Tensor]:
        """Return every trainable tensor owned by this module (recursively)."""

        found: List[Tensor] = []
        seen = set()
        for value in self.__dict__.values():
            if isinstance(value, Tensor) and value.requires_grad:
                if id(value) not in seen:
                    seen.add(id(value))
                    found.append(value)
            elif isinstance(value, Module):
                for parameter in value.parameters():
                    if id(parameter) not in seen:
                        seen.add(id(parameter))
                        found.append(parameter)
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        for parameter in item.parameters():
                            if id(parameter) not in seen:
                                seen.add(id(parameter))
                                found.append(parameter)
                    elif isinstance(item, Tensor) and item.requires_grad:
                        if id(item) not in seen:
                            seen.add(id(item))
                            found.append(item)
        return found

    def named_modules(self, prefix: str = "") -> Iterator[tuple]:
        """Yield ``(name, module)`` pairs for this module and its children."""

        yield prefix or "root", self
        for name, value in self.__dict__.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            if isinstance(value, Module):
                yield from value.named_modules(child_prefix)
            elif isinstance(value, (list, tuple)):
                for index, item in enumerate(value):
                    if isinstance(item, Module):
                        yield from item.named_modules(f"{child_prefix}[{index}]")

    def zero_grad(self) -> None:
        for parameter in self.parameters():
            parameter.zero_grad()

    def num_parameters(self) -> int:
        return int(sum(parameter.size for parameter in self.parameters()))

    # -- state dict ------------------------------------------------------------
    def state_dict(self) -> Dict[str, np.ndarray]:
        """Flatten all parameters into name -> array, for serialisation."""

        state: Dict[str, np.ndarray] = {}
        for module_name, module in self.named_modules():
            for attr_name, value in module.__dict__.items():
                if isinstance(value, Tensor) and value.requires_grad:
                    state[f"{module_name}.{attr_name}"] = value.numpy()
        return state

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        for module_name, module in self.named_modules():
            for attr_name, value in module.__dict__.items():
                if isinstance(value, Tensor) and value.requires_grad:
                    key = f"{module_name}.{attr_name}"
                    if key not in state:
                        raise KeyError(f"missing parameter {key!r} in state dict")
                    loaded = np.asarray(state[key], dtype=np.float64)
                    if loaded.shape != value.data.shape:
                        raise ValueError(
                            f"shape mismatch for {key!r}: expected {value.data.shape}, got {loaded.shape}"
                        )
                    value.data = loaded.copy()


class Linear(Module):
    """Fully-connected layer computing ``inputs @ weight + bias``.

    Weights are stored with shape ``(in_features, out_features)`` so that a
    batch of row-vector states maps directly through matrix multiplication.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: Optional[np.random.Generator] = None,
        weight_scale: Optional[float] = None,
    ):
        if in_features <= 0 or out_features <= 0:
            raise ValueError("Linear layer dimensions must be positive")
        rng = rng if rng is not None else np.random.default_rng()
        if weight_scale is None:
            # Xavier/Glorot scaling keeps tanh networks in the linear regime.
            weight_scale = float(np.sqrt(2.0 / (in_features + out_features)))
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Tensor(
            rng.normal(0.0, weight_scale, size=(in_features, out_features)),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True)

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.matmul(self.weight) + self.bias


class Activation(Module):
    """Base class for parameter-free activations.

    Each activation reports the Lipschitz constant used in the paper's
    footnote-1 bound.
    """

    #: Lipschitz constant of the activation as a scalar function.
    lipschitz_constant: float = 1.0

    name: str = "activation"

    def forward(self, inputs: Tensor) -> Tensor:  # pragma: no cover - abstract
        raise NotImplementedError


class ReLU(Activation):
    lipschitz_constant = 1.0
    name = "relu"

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.relu()


class Tanh(Activation):
    lipschitz_constant = 1.0
    name = "tanh"

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.tanh()


class Sigmoid(Activation):
    lipschitz_constant = 0.25
    name = "sigmoid"

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs.sigmoid()


class Identity(Activation):
    lipschitz_constant = 1.0
    name = "identity"

    def forward(self, inputs: Tensor) -> Tensor:
        return inputs


ACTIVATIONS = {
    "relu": ReLU,
    "tanh": Tanh,
    "sigmoid": Sigmoid,
    "identity": Identity,
    "linear": Identity,
}


def make_activation(name: str) -> Activation:
    """Instantiate an activation by name (``relu``, ``tanh``, ``sigmoid``...)."""

    key = name.lower()
    if key not in ACTIVATIONS:
        raise ValueError(f"unknown activation {name!r}; choose from {sorted(ACTIVATIONS)}")
    return ACTIVATIONS[key]()
