"""Gradient-descent optimisers: SGD (with momentum) and Adam."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.autodiff import Tensor


class Optimizer:
    """Base optimiser holding a list of parameter tensors."""

    def __init__(self, parameters: Sequence[Tensor]):
        self.parameters: List[Tensor] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer created with no parameters")

    def zero_grad(self) -> None:
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def clip_grad_norm(self, max_norm: float) -> float:
        """Clip the global gradient norm in place and return the pre-clip norm."""

        total = 0.0
        for parameter in self.parameters:
            if parameter.grad is not None:
                total += float(np.sum(parameter.grad ** 2))
        norm = float(np.sqrt(total))
        if norm > max_norm and norm > 0.0:
            scale = max_norm / norm
            for parameter in self.parameters:
                if parameter.grad is not None:
                    parameter.grad = parameter.grad * scale
        return norm


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-2,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: List[Optional[np.ndarray]] = [None] * len(self.parameters)

    def step(self) -> None:
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            if self.momentum:
                if self._velocity[index] is None:
                    self._velocity[index] = np.zeros_like(parameter.data)
                self._velocity[index] = self.momentum * self._velocity[index] + grad
                grad = self._velocity[index]
            parameter.data = parameter.data - self.lr * grad


class Adam(Optimizer):
    """Adam optimiser (Kingma & Ba), the default for every training loop."""

    def __init__(
        self,
        parameters: Sequence[Tensor],
        lr: float = 1e-3,
        betas: tuple = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        super().__init__(parameters)
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        beta1, beta2 = betas
        if not (0.0 <= beta1 < 1.0 and 0.0 <= beta2 < 1.0):
            raise ValueError("betas must be in [0, 1)")
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._step_count = 0
        self._m: List[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]
        self._v: List[np.ndarray] = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step_count += 1
        bias1 = 1.0 - self.beta1 ** self._step_count
        bias2 = 1.0 - self.beta2 ** self._step_count
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            grad = parameter.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * parameter.data
            self._m[index] = self.beta1 * self._m[index] + (1.0 - self.beta1) * grad
            self._v[index] = self.beta2 * self._v[index] + (1.0 - self.beta2) * grad ** 2
            m_hat = self._m[index] / bias1
            v_hat = self._v[index] / bias2
            parameter.data = parameter.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
