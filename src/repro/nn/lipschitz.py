"""Lipschitz-constant estimation for fully-connected controllers.

The paper (footnote 1) bounds the Lipschitz constant of a feed-forward
network as the product over layers of the operator norm ``||W||`` of each
weight matrix, multiplied by the Lipschitz constant of each activation
(1 for ReLU/Tanh, 1/4 for Sigmoid).  That product is what Table I reports as
``L`` and what the robust distillation step drives down.

Two estimators are provided:

* :func:`network_lipschitz` -- the paper's analytic product-of-norms bound.
* :func:`empirical_lipschitz` -- a sampling-based lower bound (max local
  gradient norm over sampled input pairs), useful for sanity-checking that
  the analytic bound moves in the same direction.

:func:`network_lipschitz` memoises its result keyed by a digest of the
weight bytes: the verification engine asks for the same network's constant
repeatedly (partitioning, error bounds, reports, every sweep job), and the
power iterations dominate hashing a few kilobytes of weights by orders of
magnitude.  The cache is invalidated automatically by any weight update,
because the digest changes.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

import numpy as np

from repro.nn.layers import Activation, Linear
from repro.nn.network import MLP

_LIPSCHITZ_CACHE: "OrderedDict[str, float]" = OrderedDict()
_LIPSCHITZ_CACHE_MAX_ENTRIES = 256


def _weights_digest(network: MLP) -> str:
    """Digest of all parameters (weights change => digest changes).

    Delegates to :func:`repro.experiments.digest.weights_digest` over the
    state dictionary (dtype, shape and raw bytes per parameter), with the
    layer structure -- the architecture description when available, the
    layer/activation names otherwise -- folded in so networks whose
    concatenated parameter bytes coincide but are partitioned or activated
    differently never collide.  One implementation serves both this memo
    and the experiment run store, so their invalidation contracts can never
    drift apart.
    """

    from repro.experiments.digest import weights_digest

    if hasattr(network, "architecture"):
        structure: object = network.architecture()
    else:
        structure = [
            getattr(layer, "name", type(layer).__name__) for layer in network.layers
        ]
    return weights_digest(network.state_dict(), extra=structure)


def network_weights_digest(network: MLP) -> str:
    """Public form of the memo key: a content address for the weights.

    The experiment run store keys evaluation and verification results by
    this digest (times the analysis budgets), reusing the exact
    invalidation contract of the :func:`network_lipschitz` memo: any
    parameter update changes the digest.
    """

    return _weights_digest(network)


def spectral_norm(
    matrix: np.ndarray,
    iterations: int = 4096,
    seed: Optional[int] = 0,
    tol: float = 1e-10,
) -> float:
    """Largest singular value of ``matrix`` via power iteration.

    A closed-form SVD would also work for the tiny matrices used here; power
    iteration is kept because it matches what Lipschitz-regularisation papers
    use and scales to wider layers.  Iteration stops once the estimate is
    stationary to within ``tol`` (relative); ``iterations`` is the cap needed
    when the top two singular values nearly coincide and convergence is slow.
    """

    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("spectral_norm expects a 2-D matrix")
    rng = np.random.default_rng(seed)
    vector = rng.normal(size=matrix.shape[1])
    norm = np.linalg.norm(vector)
    if norm == 0.0:
        return 0.0
    vector /= norm
    estimate = 0.0
    for _ in range(iterations):
        product = matrix @ vector
        product_norm = np.linalg.norm(product)
        if product_norm == 0.0:
            return 0.0
        left = product / product_norm
        vector = matrix.T @ left
        vector_norm = np.linalg.norm(vector)
        if vector_norm == 0.0:
            return 0.0
        vector /= vector_norm
        if abs(vector_norm - estimate) <= tol * max(vector_norm, 1.0):
            break
        estimate = vector_norm
    return float(np.linalg.norm(matrix @ vector))


def layer_lipschitz(layer: Linear) -> float:
    """Lipschitz constant of a single linear layer (its operator norm)."""

    return spectral_norm(layer.weight.data)


def network_lipschitz(network: MLP, use_cache: bool = True) -> float:
    """Product-of-layer-norms Lipschitz bound from the paper's footnote 1.

    Memoised on a digest of the current weights (see the module docstring);
    pass ``use_cache=False`` to force recomputation.
    """

    if use_cache:
        digest = _weights_digest(network)
        cached = _LIPSCHITZ_CACHE.get(digest)
        if cached is not None:
            return cached
    constant = 1.0
    for layer in network.layers:
        if isinstance(layer, Linear):
            constant *= layer_lipschitz(layer)
        elif isinstance(layer, Activation):
            constant *= layer.lipschitz_constant
    constant = float(constant)
    if use_cache:
        _LIPSCHITZ_CACHE[digest] = constant
        while len(_LIPSCHITZ_CACHE) > _LIPSCHITZ_CACHE_MAX_ENTRIES:
            _LIPSCHITZ_CACHE.popitem(last=False)
    return constant


def empirical_lipschitz(
    network: MLP,
    low: np.ndarray,
    high: np.ndarray,
    samples: int = 512,
    epsilon: float = 1e-3,
    seed: Optional[int] = 0,
) -> float:
    """Sampling lower bound on the Lipschitz constant over a box domain.

    For random points in ``[low, high]`` and random unit directions, measures
    ``||f(x + eps d) - f(x)|| / eps`` and returns the maximum.  Always at most
    the analytic bound of :func:`network_lipschitz` (up to sampling error),
    which the property-based tests rely on.
    """

    low = np.asarray(low, dtype=np.float64)
    high = np.asarray(high, dtype=np.float64)
    if low.shape != high.shape:
        raise ValueError("low and high must have the same shape")
    if np.any(high < low):
        raise ValueError("expected low <= high elementwise")
    rng = np.random.default_rng(seed)
    dimension = low.size
    points = rng.uniform(low, high, size=(samples, dimension))
    directions = rng.normal(size=(samples, dimension))
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    directions /= norms
    outputs = network.predict(points)
    perturbed = network.predict(points + epsilon * directions)
    deltas = np.linalg.norm(np.atleast_2d(perturbed - outputs), axis=-1)
    return float(np.max(deltas) / epsilon)
