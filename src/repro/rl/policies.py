"""Policy and value networks used by PPO and DDPG.

All networks are thin wrappers around :class:`repro.nn.MLP`:

* :class:`GaussianMLPPolicy` -- diagonal-Gaussian stochastic policy for PPO
  over continuous actions (the mixing weights of Section III-A).
* :class:`CategoricalMLPPolicy` -- softmax policy for PPO over a finite set
  of actions (the switching baseline A_S of [4]).
* :class:`DeterministicMLPPolicy` -- tanh-squashed deterministic actor used
  by DDPG (the expert controllers).
* :class:`ValueNetwork` / :class:`QNetwork` -- state-value and state-action
  critics.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.autodiff import Tensor, functional
from repro.nn.layers import Module
from repro.nn.network import MLP
from repro.utils.seeding import RngLike, get_rng


class GaussianMLPPolicy(Module):
    """Diagonal Gaussian policy: mean from an MLP, state-independent log std."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        action_low: Sequence[float],
        action_high: Sequence[float],
        hidden_sizes: Sequence[int] = (64, 64),
        activation: str = "tanh",
        init_log_std: float = -0.5,
        seed: Optional[int] = None,
    ):
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.action_low = np.asarray(action_low, dtype=np.float64)
        self.action_high = np.asarray(action_high, dtype=np.float64)
        if self.action_low.shape != (action_dim,) or self.action_high.shape != (action_dim,):
            raise ValueError("action bounds must have shape (action_dim,)")
        self.mean_net = MLP(state_dim, action_dim, hidden_sizes, activation=activation, seed=seed)
        self.log_std = Tensor(np.full(action_dim, float(init_log_std)), requires_grad=True)

    # -- graph-building calls (training) ---------------------------------------
    def forward(self, states: Tensor) -> Tuple[Tensor, Tensor]:
        """Return ``(mean, log_std)`` with gradients attached."""

        mean = self.mean_net(states)
        return mean, self.log_std

    def log_prob(self, states: Tensor, actions: np.ndarray) -> Tensor:
        mean, log_std = self.forward(states)
        return functional.gaussian_log_prob(actions, mean, log_std)

    def entropy(self) -> Tensor:
        return functional.gaussian_entropy(self.log_std, self.action_dim)

    # -- array-only calls (rollouts) ---------------------------------------------
    def act(self, state: np.ndarray, rng: RngLike = None, deterministic: bool = False) -> Tuple[np.ndarray, float]:
        """Sample a clipped action and return it with its log probability."""

        generator = get_rng(rng)
        mean = self.mean_net.predict(np.asarray(state, dtype=np.float64))
        std = np.exp(self.log_std.data)
        if deterministic:
            action = mean
        else:
            action = mean + std * generator.normal(size=self.action_dim)
        log_prob = float(
            np.sum(-0.5 * ((action - mean) / std) ** 2 - np.log(std) - 0.5 * np.log(2.0 * np.pi))
        )
        return np.clip(action, self.action_low, self.action_high), log_prob

    def act_batch(
        self, states: np.ndarray, rng: RngLike = None, deterministic: bool = False
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample one clipped action per row of ``states``.

        The vectorised counterpart of :meth:`act`: one ``(N, state_dim)``
        forward pass and one ``(N, action_dim)`` noise draw.  With ``N = 1``
        it consumes the generator stream exactly like a single :meth:`act`
        call and returns the same action/log-probability bit for bit.
        Returns ``(actions (N, action_dim), log_probs (N,))``.
        """

        generator = get_rng(rng)
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        mean = np.atleast_2d(self.mean_net.predict(states))
        std = np.exp(self.log_std.data)
        if deterministic:
            actions = mean
        else:
            actions = mean + std * generator.normal(size=(len(states), self.action_dim))
        log_probs = np.sum(
            -0.5 * ((actions - mean) / std) ** 2 - np.log(std) - 0.5 * np.log(2.0 * np.pi),
            axis=1,
        )
        return np.clip(actions, self.action_low, self.action_high), log_probs

    def mean_action(self, state: np.ndarray) -> np.ndarray:
        mean = self.mean_net.predict(np.asarray(state, dtype=np.float64))
        return np.clip(mean, self.action_low, self.action_high)

    def mean_actions(self, states: np.ndarray) -> np.ndarray:
        """Deterministic (mean) actions for an ``(N, state_dim)`` batch."""

        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        means = np.atleast_2d(self.mean_net.predict(states))
        return np.clip(means, self.action_low, self.action_high)


class CategoricalMLPPolicy(Module):
    """Softmax policy over ``num_actions`` discrete choices (switching baseline)."""

    def __init__(
        self,
        state_dim: int,
        num_actions: int,
        hidden_sizes: Sequence[int] = (64, 64),
        activation: str = "tanh",
        seed: Optional[int] = None,
    ):
        if num_actions < 2:
            raise ValueError("a categorical policy needs at least two actions")
        self.state_dim = state_dim
        self.num_actions = num_actions
        self.logits_net = MLP(state_dim, num_actions, hidden_sizes, activation=activation, seed=seed)

    def forward(self, states: Tensor) -> Tensor:
        return self.logits_net(states)

    def log_prob(self, states: Tensor, actions: np.ndarray) -> Tensor:
        """Log probability of integer actions under the softmax distribution."""

        logits = self.forward(states)
        # log softmax = logits - logsumexp(logits)
        max_logits = Tensor(np.max(logits.data, axis=-1, keepdims=True))
        shifted = logits - max_logits
        log_norm = shifted.exp().sum(axis=-1, keepdims=True).log() + max_logits
        log_probs = logits - log_norm
        actions = np.asarray(actions, dtype=int).reshape(-1)
        rows = np.arange(len(actions))
        return log_probs[rows, actions]

    def act(self, state: np.ndarray, rng: RngLike = None, deterministic: bool = False) -> Tuple[int, float]:
        generator = get_rng(rng)
        logits = self.logits_net.predict(np.asarray(state, dtype=np.float64))
        logits = logits - np.max(logits)
        probabilities = np.exp(logits)
        probabilities /= probabilities.sum()
        if deterministic:
            action = int(np.argmax(probabilities))
        else:
            action = int(generator.choice(self.num_actions, p=probabilities))
        return action, float(np.log(probabilities[action] + 1e-12))

    def act_batch(
        self, states: np.ndarray, rng: RngLike = None, deterministic: bool = False
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Sample one action per row of ``states``.

        Returns ``(actions (N,) int, log_probs (N,))``.  With ``N = 1`` the
        generator stream and the sampled action match a single :meth:`act`
        call (one ``choice`` draw per row, in row order).
        """

        generator = get_rng(rng)
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        logits = np.atleast_2d(self.logits_net.predict(states))
        logits = logits - np.max(logits, axis=1, keepdims=True)
        probabilities = np.exp(logits)
        probabilities /= probabilities.sum(axis=1, keepdims=True)
        if deterministic:
            actions = np.argmax(probabilities, axis=1)
        else:
            actions = np.array(
                [int(generator.choice(self.num_actions, p=row)) for row in probabilities]
            )
        rows = np.arange(len(states))
        log_probs = np.log(probabilities[rows, actions] + 1e-12)
        return actions, log_probs

    def probabilities(self, state: np.ndarray) -> np.ndarray:
        logits = self.logits_net.predict(np.asarray(state, dtype=np.float64))
        logits = logits - np.max(logits)
        exp = np.exp(logits)
        return exp / exp.sum()


class DeterministicMLPPolicy(Module):
    """Tanh-squashed deterministic actor ``a = low + (tanh(f(s)) + 1)/2 * (high - low)``."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        action_low: Sequence[float],
        action_high: Sequence[float],
        hidden_sizes: Sequence[int] = (64, 64),
        activation: str = "relu",
        seed: Optional[int] = None,
    ):
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.action_low = np.asarray(action_low, dtype=np.float64)
        self.action_high = np.asarray(action_high, dtype=np.float64)
        self.net = MLP(
            state_dim,
            action_dim,
            hidden_sizes,
            activation=activation,
            output_activation="tanh",
            seed=seed,
        )
        self._scale = (self.action_high - self.action_low) / 2.0
        self._offset = (self.action_high + self.action_low) / 2.0

    def forward(self, states: Tensor) -> Tensor:
        squashed = self.net(states)
        return squashed * Tensor(self._scale) + Tensor(self._offset)

    def act(self, state: np.ndarray, noise_scale: float = 0.0, rng: RngLike = None) -> np.ndarray:
        action = self.net.predict(np.asarray(state, dtype=np.float64)) * self._scale + self._offset
        if noise_scale > 0.0:
            action = action + noise_scale * self._scale * get_rng(rng).normal(size=self.action_dim)
        return np.clip(action, self.action_low, self.action_high)

    def act_batch(self, states: np.ndarray, noise_scale: float = 0.0, rng: RngLike = None) -> np.ndarray:
        """Deterministic actions for an ``(N, state_dim)`` batch (optional
        exploration noise, one draw per row)."""

        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        actions = np.atleast_2d(self.net.predict(states)) * self._scale + self._offset
        if noise_scale > 0.0:
            actions = actions + noise_scale * self._scale * get_rng(rng).normal(
                size=(len(states), self.action_dim)
            )
        return np.clip(actions, self.action_low, self.action_high)


class ValueNetwork(Module):
    """State-value function V(s) for PPO."""

    def __init__(self, state_dim: int, hidden_sizes: Sequence[int] = (64, 64), activation: str = "tanh", seed: Optional[int] = None):
        self.net = MLP(state_dim, 1, hidden_sizes, activation=activation, seed=seed)

    def forward(self, states: Tensor) -> Tensor:
        return self.net(states)

    def value(self, state: np.ndarray) -> float:
        return float(np.atleast_1d(self.net.predict(np.asarray(state, dtype=np.float64)))[0])

    def values(self, states: np.ndarray) -> np.ndarray:
        return self.net.predict(np.atleast_2d(np.asarray(states, dtype=np.float64)))[:, 0]


class QNetwork(Module):
    """State-action value function Q(s, a) for DDPG."""

    def __init__(
        self,
        state_dim: int,
        action_dim: int,
        hidden_sizes: Sequence[int] = (64, 64),
        activation: str = "relu",
        seed: Optional[int] = None,
    ):
        self.state_dim = state_dim
        self.action_dim = action_dim
        self.net = MLP(state_dim + action_dim, 1, hidden_sizes, activation=activation, seed=seed)

    def forward(self, states: Tensor, actions: Tensor) -> Tensor:
        joined = Tensor.concatenate([Tensor.ensure(states), Tensor.ensure(actions)], axis=-1)
        return self.net(joined)

    def q_values(self, states: np.ndarray, actions: np.ndarray) -> np.ndarray:
        joined = np.concatenate(
            [np.atleast_2d(np.asarray(states, dtype=np.float64)), np.atleast_2d(np.asarray(actions, dtype=np.float64))],
            axis=-1,
        )
        return self.net.predict(joined)[:, 0]
