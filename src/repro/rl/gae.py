"""Return and advantage estimation for the on-policy (PPO) updates."""

from __future__ import annotations

from typing import Tuple

import numpy as np


def discounted_returns(rewards: np.ndarray, dones: np.ndarray, gamma: float, last_value: float = 0.0) -> np.ndarray:
    """Discounted reward-to-go with bootstrapping at a truncated final step."""

    rewards = np.asarray(rewards, dtype=np.float64)
    dones = np.asarray(dones, dtype=bool)
    returns = np.zeros_like(rewards)
    running = float(last_value)
    for index in reversed(range(len(rewards))):
        if dones[index]:
            running = 0.0
        running = rewards[index] + gamma * running
        returns[index] = running
    return returns


def compute_gae(
    rewards: np.ndarray,
    values: np.ndarray,
    dones: np.ndarray,
    gamma: float,
    lam: float,
    last_value: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generalised Advantage Estimation (Schulman et al. 2016).

    Returns ``(advantages, returns)`` where ``returns = advantages + values``
    serve as the value-function regression targets.  ``dones`` marks true
    episode terminations (safety violation or horizon), at which the
    bootstrap value is zeroed.
    """

    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    dones = np.asarray(dones, dtype=bool)
    if not (len(rewards) == len(values) == len(dones)):
        raise ValueError("rewards, values and dones must have equal length")
    advantages = np.zeros_like(rewards)
    gae = 0.0
    for index in reversed(range(len(rewards))):
        if index == len(rewards) - 1:
            next_value = 0.0 if dones[index] else float(last_value)
        else:
            next_value = 0.0 if dones[index] else values[index + 1]
        non_terminal = 0.0 if dones[index] else 1.0
        delta = rewards[index] + gamma * next_value - values[index]
        gae = delta + gamma * lam * non_terminal * gae
        advantages[index] = gae
    returns = advantages + values
    return advantages, returns
