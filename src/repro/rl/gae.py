"""Return and advantage estimation for the on-policy (PPO) updates.

Two kernels compute Generalised Advantage Estimation:

* :func:`compute_gae` -- the scalar reference over one flat transition
  sequence (a single environment's ``(T,)`` arrays);
* :func:`compute_gae_batch` -- the vectorised kernel over ``(T, N)``
  time-major arrays from ``N`` parallel environments.  Each column runs the
  same backward recurrence as the scalar kernel (same operation order, so a
  single column is bit-identical to :func:`compute_gae` on that column),
  with per-environment ``done`` masks resetting the accumulator and
  per-environment bootstrap values at the truncated final step.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.utils.dtypes import resolve_training_dtype


def discounted_returns(rewards: np.ndarray, dones: np.ndarray, gamma: float, last_value: float = 0.0) -> np.ndarray:
    """Discounted reward-to-go with bootstrapping at a truncated final step."""

    rewards = np.asarray(rewards, dtype=np.float64)
    dones = np.asarray(dones, dtype=bool)
    returns = np.zeros_like(rewards)
    running = float(last_value)
    for index in reversed(range(len(rewards))):
        if dones[index]:
            running = 0.0
        running = rewards[index] + gamma * running
        returns[index] = running
    return returns


def compute_gae(
    rewards: np.ndarray,
    values: np.ndarray,
    dones: np.ndarray,
    gamma: float,
    lam: float,
    last_value: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Generalised Advantage Estimation (Schulman et al. 2016).

    Returns ``(advantages, returns)`` where ``returns = advantages + values``
    serve as the value-function regression targets.  ``dones`` marks true
    episode terminations (safety violation or horizon), at which the
    bootstrap value is zeroed.
    """

    rewards = np.asarray(rewards, dtype=np.float64)
    values = np.asarray(values, dtype=np.float64)
    dones = np.asarray(dones, dtype=bool)
    if not (len(rewards) == len(values) == len(dones)):
        raise ValueError("rewards, values and dones must have equal length")
    advantages = np.zeros_like(rewards)
    gae = 0.0
    for index in reversed(range(len(rewards))):
        if index == len(rewards) - 1:
            next_value = 0.0 if dones[index] else float(last_value)
        else:
            next_value = 0.0 if dones[index] else values[index + 1]
        non_terminal = 0.0 if dones[index] else 1.0
        delta = rewards[index] + gamma * next_value - values[index]
        gae = delta + gamma * lam * non_terminal * gae
        advantages[index] = gae
    returns = advantages + values
    return advantages, returns


def compute_gae_batch(
    rewards: np.ndarray,
    values: np.ndarray,
    dones: np.ndarray,
    gamma: float,
    lam: float,
    last_values: np.ndarray,
    dtype: "str | np.dtype" = "float64",
) -> Tuple[np.ndarray, np.ndarray]:
    """GAE over ``(T, N)`` time-major batches from ``N`` parallel envs.

    ``rewards``, ``values`` and ``dones`` hold step ``t`` of environment
    ``n`` at ``[t, n]``; ``last_values`` is the ``(N,)`` bootstrap value of
    each environment's observation after the final stored step (used only
    when that environment's last transition is truncated rather than done).
    Column ``n`` of the result equals ``compute_gae`` run on column ``n``
    alone, bit for bit -- episode boundaries never leak across columns.

    ``dtype`` selects the working precision (``"float64"``, the default, or
    ``"float32"`` for the reduced-precision training mode); the scalar
    :func:`compute_gae` reference always runs in float64.
    """

    dtype = resolve_training_dtype(dtype)
    rewards = np.atleast_2d(np.asarray(rewards, dtype=dtype))
    values = np.atleast_2d(np.asarray(values, dtype=dtype))
    dones = np.atleast_2d(np.asarray(dones, dtype=bool))
    if not (rewards.shape == values.shape == dones.shape):
        raise ValueError("rewards, values and dones must have equal (T, N) shapes")
    horizon, num_envs = rewards.shape
    last_values = np.asarray(last_values, dtype=dtype).reshape(-1)
    if last_values.shape != (num_envs,):
        raise ValueError(f"last_values must have shape ({num_envs},), got {last_values.shape}")

    advantages = np.zeros_like(rewards)
    gae = np.zeros(num_envs, dtype=dtype)
    for index in reversed(range(horizon)):
        if index == horizon - 1:
            next_value = np.where(dones[index], 0.0, last_values)
        else:
            next_value = np.where(dones[index], 0.0, values[index + 1])
        non_terminal = np.where(dones[index], 0.0, 1.0)
        delta = rewards[index] + gamma * next_value - values[index]
        gae = delta + gamma * lam * non_terminal * gae
        advantages[index] = gae
    returns = advantages + values
    return advantages, returns
