"""Gym-style environment wrapper around a :class:`repro.systems.ControlSystem`.

The wrapper implements the MDP of Section III-A: the observation is the
(possibly perturbed) plant state, the episode terminates on a safety
violation or after ``T`` steps, and the reward combines a large negative
punishment for leaving the safe region with a monotonically-decreasing
function of the applied control energy.

The same wrapper trains the DDPG experts (action = control input), while the
adaptive-mixing and switching environments in :mod:`repro.core.mixing` and
:mod:`repro.baselines.switching` subclass it and override
:meth:`ControlEnv.action_to_control`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.rl.spaces import BoxSpace
from repro.systems.base import ControlSystem
from repro.systems.simulation import PerturbationFn
from repro.utils.seeding import RngLike, get_rng


@dataclass
class RewardFunction:
    """The paper's reward: punishment on violation, energy cost otherwise.

    ``r(s, a) = R_pun`` when the next state is unsafe, otherwise
    ``h(||u||_1)`` with ``h`` monotonically decreasing.  We use
    ``h(x) = survival_bonus - energy_weight * x - state_weight * ||s||_2^2``;
    the state term is optional (zero by default so the default matches the
    paper exactly) but useful when training experts from scratch, which the
    paper obtains with off-the-shelf DDPG.
    """

    punishment: float = -100.0
    energy_weight: float = 0.05
    survival_bonus: float = 1.0
    state_weight: float = 0.0

    def __call__(self, state: np.ndarray, control: np.ndarray, next_state: np.ndarray, safe: bool) -> float:
        if not safe:
            return float(self.punishment)
        energy = float(np.sum(np.abs(control)))
        state_cost = float(np.sum(np.asarray(next_state) ** 2)) if self.state_weight else 0.0
        return float(self.survival_bonus - self.energy_weight * energy - self.state_weight * state_cost)


class ControlEnv:
    """Minimal gym-like API: ``reset() -> obs`` and ``step(a) -> (obs, r, done, info)``."""

    def __init__(
        self,
        system: ControlSystem,
        reward: Optional[RewardFunction] = None,
        horizon: Optional[int] = None,
        perturbation: Optional[PerturbationFn] = None,
        rng: RngLike = None,
    ):
        self.system = system
        self.reward = reward if reward is not None else RewardFunction()
        self.horizon = int(horizon) if horizon is not None else system.horizon
        self.perturbation = perturbation
        self._rng = get_rng(rng)
        self._state: Optional[np.ndarray] = None
        self._steps = 0
        self.observation_space = BoxSpace(system.safe_region.low, system.safe_region.high)
        self.action_space = self.build_action_space()

    # -- hooks ---------------------------------------------------------------
    def build_action_space(self) -> BoxSpace:
        """Default: the agent outputs the raw control input."""

        return BoxSpace(self.system.control_bound.low, self.system.control_bound.high)

    def action_to_control(self, action: np.ndarray, state: np.ndarray) -> np.ndarray:
        """Map the agent's action to the control applied to the plant."""

        return np.atleast_1d(np.asarray(action, dtype=np.float64))

    # -- gym API ----------------------------------------------------------------
    def seed(self, seed: int) -> None:
        self._rng = get_rng(seed)

    def reset(self, initial_state: Optional[np.ndarray] = None) -> np.ndarray:
        if initial_state is None:
            initial_state = self.system.sample_initial_state(self._rng)
        self._state = np.asarray(initial_state, dtype=np.float64).copy()
        self._steps = 0
        return self._observe(self._state)

    def step(self, action: np.ndarray) -> Tuple[np.ndarray, float, bool, dict]:
        if self._state is None:
            raise RuntimeError("step() called before reset()")
        state = self._state
        control = self.system.clip_control(self.action_to_control(np.asarray(action, dtype=np.float64), state))
        next_state = self.system.step(state, control, rng=self._rng)
        safe = self.system.is_safe(next_state)
        reward = self.reward(state, control, next_state, safe)
        self._steps += 1
        done = (not safe) or self._steps >= self.horizon
        self._state = next_state
        info = {
            "safe": safe,
            "control": control,
            "steps": self._steps,
            "true_state": next_state.copy(),
        }
        return self._observe(next_state), float(reward), bool(done), info

    # -- helpers ---------------------------------------------------------------
    def _observe(self, state: np.ndarray) -> np.ndarray:
        if self.perturbation is None:
            return state.copy()
        return np.asarray(self.perturbation(state.copy(), self._rng), dtype=np.float64)

    @property
    def state_dim(self) -> int:
        return self.system.state_dim

    @property
    def action_dim(self) -> int:
        return self.action_space.dimension
