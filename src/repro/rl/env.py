"""Gym-style environment wrappers around a :class:`repro.systems.ControlSystem`.

Two environments implement the MDP of Section III-A -- the observation is
the (possibly perturbed) plant state, the episode terminates on a safety
violation or after ``T`` steps, and the reward combines a large negative
punishment for leaving the safe region with a monotonically-decreasing
function of the applied control energy:

* :class:`ControlEnv` -- the scalar environment (``reset() -> obs``,
  ``step(a) -> (obs, r, done, info)``), stepping one plant state at a time.
* :class:`VecControlEnv` -- ``N`` simultaneous copies of the same MDP
  advanced in lockstep on the plant's batched primitives
  (``step_batch``/``is_safe_batch``), with per-environment auto-reset: a
  member whose episode ends is immediately re-seeded from ``X0`` and its
  fresh observation returned in the same step.  With ``num_envs = 1`` the
  random stream consumption and every emitted array are bit-identical to
  the scalar environment driven by the historical collection loop.

:class:`VecMixingEnv` is the vectorised adaptive-mixing environment (the
action is the expert weight vector, Eq. (4)); the scalar counterpart
:class:`repro.core.mixing.AdaptiveMixingEnv` builds it via
:meth:`ControlEnv.vectorized`.  Scalar environments that override
:meth:`ControlEnv.action_to_control` without providing a vectorised
environment still vectorize correctly -- :class:`VecControlEnv` falls back
to applying the template's per-row hook.

The same scalar wrapper trains the DDPG experts (action = control input),
while the adaptive-mixing and switching environments in
:mod:`repro.core.mixing` and :mod:`repro.baselines.switching` subclass it
and override :meth:`ControlEnv.action_to_control`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple, Union

import numpy as np

from repro.rl.spaces import BoxSpace
from repro.systems.base import ControlSystem
from repro.systems.simulation import (
    PerturbationFn,
    _perturbation_batch,
    weighted_expert_controls,
)
from repro.utils.seeding import RngLike, get_rng


@dataclass
class RewardFunction:
    """The paper's reward: punishment on violation, energy cost otherwise.

    ``r(s, a) = R_pun`` when the next state is unsafe, otherwise
    ``h(||u||_1)`` with ``h`` monotonically decreasing.  We use
    ``h(x) = survival_bonus - energy_weight * x - state_weight * ||s||_2^2``;
    the state term is optional (zero by default so the default matches the
    paper exactly) but useful when training experts from scratch, which the
    paper obtains with off-the-shelf DDPG.
    """

    punishment: float = -100.0
    energy_weight: float = 0.05
    survival_bonus: float = 1.0
    state_weight: float = 0.0

    def __call__(self, state: np.ndarray, control: np.ndarray, next_state: np.ndarray, safe: bool) -> float:
        if not safe:
            return float(self.punishment)
        energy = float(np.sum(np.abs(control)))
        state_cost = float(np.sum(np.asarray(next_state) ** 2)) if self.state_weight else 0.0
        return float(self.survival_bonus - self.energy_weight * energy - self.state_weight * state_cost)

    def batch(
        self, states: np.ndarray, controls: np.ndarray, next_states: np.ndarray, safe: np.ndarray
    ) -> np.ndarray:
        """Vectorised reward over ``(N, ...)`` batches; row ``i`` equals
        ``self(states[i], controls[i], next_states[i], safe[i])`` bit for bit."""

        energy = np.sum(np.abs(np.atleast_2d(controls)), axis=1)
        if self.state_weight:
            state_cost = np.sum(np.atleast_2d(next_states) ** 2, axis=1)
        else:
            state_cost = np.zeros_like(energy)
        rewards = self.survival_bonus - self.energy_weight * energy - self.state_weight * state_cost
        return np.where(np.asarray(safe, dtype=bool), rewards, float(self.punishment))


class ControlEnv:
    """Minimal gym-like API: ``reset() -> obs`` and ``step(a) -> (obs, r, done, info)``."""

    def __init__(
        self,
        system: ControlSystem,
        reward: Optional[RewardFunction] = None,
        horizon: Optional[int] = None,
        perturbation: Optional[PerturbationFn] = None,
        rng: RngLike = None,
    ):
        self.system = system
        self.reward = reward if reward is not None else RewardFunction()
        self.horizon = int(horizon) if horizon is not None else system.horizon
        self.perturbation = perturbation
        self._rng = get_rng(rng)
        self._state: Optional[np.ndarray] = None
        self._steps = 0
        self.observation_space = BoxSpace(system.safe_region.low, system.safe_region.high)
        self.action_space = self.build_action_space()

    # -- hooks ---------------------------------------------------------------
    def build_action_space(self) -> BoxSpace:
        """Default: the agent outputs the raw control input."""

        return BoxSpace(self.system.control_bound.low, self.system.control_bound.high)

    def action_to_control(self, action: np.ndarray, state: np.ndarray) -> np.ndarray:
        """Map the agent's action to the control applied to the plant."""

        return np.atleast_1d(np.asarray(action, dtype=np.float64))

    # -- gym API ----------------------------------------------------------------
    def seed(self, seed: int) -> None:
        self._rng = get_rng(seed)

    def reset(self, initial_state: Optional[np.ndarray] = None) -> np.ndarray:
        if initial_state is None:
            initial_state = self.system.sample_initial_state(self._rng)
        self._state = np.asarray(initial_state, dtype=np.float64).copy()
        self._steps = 0
        return self._observe(self._state)

    def step(self, action: np.ndarray) -> Tuple[np.ndarray, float, bool, dict]:
        if self._state is None:
            raise RuntimeError("step() called before reset()")
        state = self._state
        control = self.system.clip_control(self.action_to_control(np.asarray(action, dtype=np.float64), state))
        next_state = self.system.step(state, control, rng=self._rng)
        safe = self.system.is_safe(next_state)
        reward = self.reward(state, control, next_state, safe)
        self._steps += 1
        done = (not safe) or self._steps >= self.horizon
        self._state = next_state
        info = {
            "safe": safe,
            "control": control,
            "steps": self._steps,
            "true_state": next_state.copy(),
        }
        return self._observe(next_state), float(reward), bool(done), info

    # -- helpers ---------------------------------------------------------------
    def _observe(self, state: np.ndarray) -> np.ndarray:
        if self.perturbation is None:
            return state.copy()
        return np.asarray(self.perturbation(state.copy(), self._rng), dtype=np.float64)

    def vectorized(self, num_envs: int) -> "VecControlEnv":
        """Build the ``N``-environment lockstep version of this environment.

        The vectorised environment shares this environment's random
        generator, so with ``num_envs = 1`` the returned environment
        consumes the stream exactly like this one.  Subclasses with a
        dedicated vectorised counterpart override this (e.g. the adaptive
        mixing environment returns a :class:`VecMixingEnv`); the default
        :class:`VecControlEnv` applies this environment's per-row
        :meth:`action_to_control` hook, so overriding subclasses vectorize
        correctly either way.
        """

        return VecControlEnv(self, num_envs)

    @property
    def state_dim(self) -> int:
        return self.system.state_dim

    @property
    def action_dim(self) -> int:
        return self.action_space.dimension


class VecControlEnv:
    """``N`` lockstep copies of a :class:`ControlEnv` MDP on one plant.

    The plant object is stateless (the environment owns the state), so one
    system instance serves all ``N`` members: ``step`` performs one batched
    control mapping, one batched clip, one batched plant update and one
    batched safety check per call.  Members whose episode ends (violation
    or horizon) are auto-reset: their ``done`` flag is reported and the
    observation returned for them is the fresh initial observation, which
    is what an on-policy collection loop needs.

    API: ``reset() -> (N, state_dim)`` and ``step(actions (N, action_dim))
    -> (observations, rewards, dones, info)`` with ``(N,)`` reward/done
    vectors; ``info`` carries the batched ``controls``, per-member ``safe``
    flags and the true ``next_states`` (pre-reset).

    With ``num_envs = 1`` every random draw (initial state, perturbation,
    disturbance) happens in the same order and with the same shapes as the
    scalar environment driven by the historical per-step loop, so seeded
    results agree bit for bit; with ``N > 1`` the stream is consumed
    step-major (like :func:`repro.systems.simulation.rollout_batch`) and
    individual members differ from sequential scalar episodes on
    stochastic plants -- statistically equivalent, not bitwise.
    """

    def __init__(self, template: ControlEnv, num_envs: int):
        if num_envs <= 0:
            raise ValueError("num_envs must be positive")
        self.template = template
        self.num_envs = int(num_envs)
        self.system = template.system
        self.reward = template.reward
        self.horizon = template.horizon
        self.perturbation = template.perturbation
        self._rng = template._rng
        self.observation_space = template.observation_space
        self.action_space = template.action_space
        self._states: Optional[np.ndarray] = None
        self._steps = np.zeros(self.num_envs, dtype=int)

    # -- hooks ---------------------------------------------------------------
    def actions_to_controls(self, actions: np.ndarray, states: np.ndarray) -> np.ndarray:
        """Map ``(N, action_dim)`` agent actions to raw plant controls.

        Uses the template's ``action_to_control_batch`` when it provides
        one, falling back to its per-row :meth:`ControlEnv.action_to_control`
        hook -- so any scalar subclass vectorizes correctly out of the box.
        """

        batch = getattr(self.template, "action_to_control_batch", None)
        if batch is not None:
            return np.atleast_2d(np.asarray(batch(actions, states), dtype=np.float64))
        return np.stack(
            [
                np.atleast_1d(self.template.action_to_control(action, state))
                for action, state in zip(np.atleast_2d(actions), states)
            ],
            axis=0,
        )

    # -- vectorized gym API ----------------------------------------------------
    def seed(self, seed: int) -> None:
        self._rng = get_rng(seed)

    def _sample_initial_states(self, count: int) -> np.ndarray:
        return np.atleast_2d(self.system.initial_set.sample(self._rng, count=count))

    def _observe(self, states: np.ndarray) -> np.ndarray:
        if self.perturbation is None:
            return states.copy()
        return _perturbation_batch(self.perturbation, states, self._rng)

    def reset(self, initial_states: Optional[np.ndarray] = None) -> np.ndarray:
        if initial_states is None:
            initial_states = self._sample_initial_states(self.num_envs)
        states = np.atleast_2d(np.asarray(initial_states, dtype=np.float64)).copy()
        if states.shape != (self.num_envs, self.system.state_dim):
            raise ValueError(
                f"initial_states have shape {states.shape}, "
                f"expected ({self.num_envs}, {self.system.state_dim})"
            )
        self._states = states
        self._steps = np.zeros(self.num_envs, dtype=int)
        return self._observe(self._states)

    def step(self, actions: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray, dict]:
        if self._states is None:
            raise RuntimeError("step() called before reset()")
        states = self._states
        actions = np.asarray(actions, dtype=np.float64)
        if actions.ndim <= 1:
            # One scalar action per member (e.g. a categorical policy's
            # ``(N,)`` vector) -- a column, never a single ``(1, N)`` row.
            actions = actions.reshape(self.num_envs, -1)
        if len(actions) != self.num_envs:
            raise ValueError(
                f"actions have shape {actions.shape}, expected ({self.num_envs}, action_dim)"
            )
        controls = self.system.clip_control_batch(self.actions_to_controls(actions, states))
        next_states = self.system.step_batch(states, controls, rng=self._rng)
        safe = self.system.is_safe_batch(next_states)
        rewards = self.reward.batch(states, controls, next_states, safe)
        self._steps += 1
        dones = (~safe) | (self._steps >= self.horizon)

        observations = self._observe(next_states)
        info = {
            "safe": safe,
            "controls": controls,
            "steps": self._steps.copy(),
            "next_states": next_states.copy(),
        }

        self._states = next_states.copy()
        done_index = np.flatnonzero(dones)
        if done_index.size:
            fresh = self._sample_initial_states(done_index.size)
            self._states[done_index] = fresh
            self._steps[done_index] = 0
            observations[done_index] = self._observe(fresh)
        return observations, rewards, dones, info

    @property
    def state_dim(self) -> int:
        return self.system.state_dim

    @property
    def action_dim(self) -> int:
        return self.action_space.dimension


class VecMixingEnv(VecControlEnv):
    """Vectorised adaptive-mixing environment (Section III-A, Eq. (4)).

    The action is the ``(N, num_experts)`` weight matrix; the control
    applied to each plant copy is the clipped weighted sum of the experts'
    batched control outputs.  The scalar counterpart is
    :class:`repro.core.mixing.AdaptiveMixingEnv`, whose ``vectorized``
    method builds this class; the expert evaluation goes through
    :func:`repro.systems.simulation.batch_controls`, so experts exposing a
    vectorised ``batch_control`` run at array speed and the rest fall back
    per row.
    """

    def __init__(
        self,
        template: ControlEnv,
        num_envs: int,
        experts: Sequence[Callable],
        weight_bounds: Union[float, Sequence[float]],
    ):
        super().__init__(template, num_envs)
        self.experts = list(experts)
        if len(self.experts) < 2:
            raise ValueError("adaptive mixing requires at least two experts")
        bounds = np.atleast_1d(np.asarray(weight_bounds, dtype=np.float64))
        if bounds.size == 1:
            bounds = np.full(len(self.experts), float(bounds[0]))
        if bounds.size != len(self.experts):
            raise ValueError("weight_bounds must be scalar or one value per expert")
        self.weight_bounds = bounds

    def actions_to_controls(self, actions: np.ndarray, states: np.ndarray) -> np.ndarray:
        """Eq. (4), batched: weighted sum of the experts' controls."""

        weights = np.clip(np.atleast_2d(actions), -self.weight_bounds, self.weight_bounds)
        return weighted_expert_controls(self.experts, weights, states, self.system.control_dim)
