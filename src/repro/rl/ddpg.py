"""Deep Deterministic Policy Gradient.

DDPG (Lillicrap et al. 2016) trains the paper's expert neural controllers:
each test system has two experts obtained by DDPG with different
hyper-parameters (hidden sizes, learning rates, exploration noise).  Per
Remark 1, DDPG can also train the adaptive-mixing policy, which the ablation
benchmark exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.autodiff import Tensor, functional, no_grad
from repro.nn.network import hard_update, soft_update
from repro.nn.optim import Adam
from repro.rl.buffers import ReplayBuffer
from repro.rl.env import ControlEnv
from repro.rl.policies import DeterministicMLPPolicy, QNetwork
from repro.utils.logging import TrainingLogger
from repro.utils.seeding import RngLike, get_rng


@dataclass
class DDPGConfig:
    """Hyper-parameters of the DDPG trainer."""

    episodes: int = 100
    max_steps: Optional[int] = None
    gamma: float = 0.99
    tau: float = 0.01
    actor_lr: float = 1e-3
    critic_lr: float = 1e-3
    batch_size: int = 128
    buffer_capacity: int = 100_000
    exploration_noise: float = 0.1
    exploration_decay: float = 0.995
    warmup_steps: int = 500
    updates_per_step: int = 1
    hidden_sizes: tuple = (64, 64)
    max_grad_norm: float = 5.0
    seed: Optional[int] = None
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.episodes <= 0:
            raise ValueError("episodes must be positive")
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        if not 0.0 < self.tau <= 1.0:
            raise ValueError("tau must be in (0, 1]")


class DDPGTrainer:
    """Off-policy actor-critic trainer with target networks and replay memory."""

    def __init__(
        self,
        env: ControlEnv,
        actor: Optional[DeterministicMLPPolicy] = None,
        critic: Optional[QNetwork] = None,
        config: Optional[DDPGConfig] = None,
        rng: RngLike = None,
    ):
        self.env = env
        self.config = config if config is not None else DDPGConfig()
        self._rng = get_rng(rng if rng is not None else self.config.seed)

        if actor is None:
            actor = DeterministicMLPPolicy(
                env.state_dim,
                env.action_dim,
                env.action_space.low,
                env.action_space.high,
                hidden_sizes=self.config.hidden_sizes,
                seed=self.config.seed,
            )
        self.actor = actor
        self.critic = critic if critic is not None else QNetwork(
            env.state_dim, env.action_dim, hidden_sizes=self.config.hidden_sizes, seed=self.config.seed
        )

        self.target_actor = DeterministicMLPPolicy(
            env.state_dim,
            env.action_dim,
            self.actor.action_low,
            self.actor.action_high,
            hidden_sizes=self.actor.net.hidden_sizes,
            activation=self.actor.net.activation_name,
        )
        hard_update(self.target_actor, self.actor)
        self.target_critic = QNetwork(
            env.state_dim,
            env.action_dim,
            hidden_sizes=self.critic.net.hidden_sizes,
            activation=self.critic.net.activation_name,
        )
        hard_update(self.target_critic, self.critic)

        self.actor_optimizer = Adam(self.actor.parameters(), lr=self.config.actor_lr)
        self.critic_optimizer = Adam(self.critic.parameters(), lr=self.config.critic_lr)
        self.buffer = ReplayBuffer(
            self.config.buffer_capacity, env.state_dim, env.action_dim, rng=self._rng
        )
        self.logger = TrainingLogger("ddpg", verbose=self.config.verbose)
        self._total_steps = 0
        self._noise_scale = self.config.exploration_noise

    # ------------------------------------------------------------------
    def select_action(self, state: np.ndarray, explore: bool = True) -> np.ndarray:
        noise = self._noise_scale if explore else 0.0
        if explore and self._total_steps < self.config.warmup_steps:
            return self.env.action_space.sample(self._rng)
        return self.actor.act(state, noise_scale=noise, rng=self._rng)

    def update(self) -> dict:
        """One gradient step on the critic and the actor from replayed data."""

        if len(self.buffer) < self.config.batch_size:
            return {"critic_loss": 0.0, "actor_loss": 0.0}
        states, actions, rewards, next_states, dones = self.buffer.sample(self.config.batch_size)

        # Critic target: r + gamma * (1 - done) * Q_target(s', mu_target(s'))
        with no_grad():
            next_actions = self.target_actor.forward(Tensor(next_states)).data
            next_q = self.target_critic.q_values(next_states, next_actions)
        targets = rewards + self.config.gamma * (1.0 - dones) * next_q

        self.critic_optimizer.zero_grad()
        predictions = self.critic(Tensor(states), Tensor(actions))
        critic_loss = functional.mse_loss(predictions, targets.reshape(-1, 1))
        critic_loss.backward()
        self.critic_optimizer.clip_grad_norm(self.config.max_grad_norm)
        self.critic_optimizer.step()

        # Actor: maximise Q(s, mu(s)) -- gradient flows through the critic input.
        self.actor_optimizer.zero_grad()
        actor_actions = self.actor.forward(Tensor(states))
        actor_loss = -self.critic(Tensor(states), actor_actions).mean()
        actor_loss.backward()
        self.actor_optimizer.clip_grad_norm(self.config.max_grad_norm)
        self.actor_optimizer.step()

        soft_update(self.target_actor, self.actor, self.config.tau)
        soft_update(self.target_critic, self.critic, self.config.tau)
        return {"critic_loss": float(critic_loss.data), "actor_loss": float(actor_loss.data)}

    # ------------------------------------------------------------------
    def train(self, episodes: Optional[int] = None) -> TrainingLogger:
        """Standard DDPG training loop over full episodes."""

        episodes = episodes if episodes is not None else self.config.episodes
        max_steps = self.config.max_steps if self.config.max_steps is not None else self.env.horizon
        for _ in range(episodes):
            observation = self.env.reset()
            episode_return = 0.0
            losses = {"critic_loss": 0.0, "actor_loss": 0.0}
            for _step in range(max_steps):
                action = self.select_action(observation, explore=True)
                next_observation, reward, done, _info = self.env.step(action)
                self.buffer.add(observation, action, reward, next_observation, done)
                observation = next_observation
                episode_return += reward
                self._total_steps += 1
                for _ in range(self.config.updates_per_step):
                    losses = self.update()
                if done:
                    break
            self._noise_scale = max(self._noise_scale * self.config.exploration_decay, 0.01)
            self.logger.log(episode_return=episode_return, noise=self._noise_scale, **losses)
        return self.logger

    def policy_network(self):
        """The trained actor's underlying MLP (used to wrap experts)."""

        return self.actor
