"""Experience storage: on-policy rollout buffer (PPO) and replay memory (DDPG)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.utils.seeding import RngLike, get_rng


@dataclass
class RolloutBuffer:
    """Stores one batch of on-policy transitions for PPO.

    Transitions are appended step by step; episode boundaries are recorded
    through the ``done`` flags so GAE can reset its accumulator.  After
    advantages are attached, :meth:`minibatches` yields shuffled index
    batches for the policy/value updates.
    """

    states: List[np.ndarray] = field(default_factory=list)
    actions: List[np.ndarray] = field(default_factory=list)
    rewards: List[float] = field(default_factory=list)
    dones: List[bool] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    log_probs: List[float] = field(default_factory=list)
    last_value: float = 0.0
    advantages: Optional[np.ndarray] = None
    returns: Optional[np.ndarray] = None

    def add(
        self,
        state: np.ndarray,
        action: np.ndarray,
        reward: float,
        done: bool,
        value: float,
        log_prob: float,
    ) -> None:
        self.states.append(np.asarray(state, dtype=np.float64))
        self.actions.append(np.atleast_1d(np.asarray(action, dtype=np.float64)))
        self.rewards.append(float(reward))
        self.dones.append(bool(done))
        self.values.append(float(value))
        self.log_probs.append(float(log_prob))

    def __len__(self) -> int:
        return len(self.rewards)

    def arrays(self) -> Dict[str, np.ndarray]:
        return {
            "states": np.asarray(self.states),
            "actions": np.asarray(self.actions),
            "rewards": np.asarray(self.rewards),
            "dones": np.asarray(self.dones, dtype=bool),
            "values": np.asarray(self.values),
            "log_probs": np.asarray(self.log_probs),
        }

    def set_advantages(self, advantages: np.ndarray, returns: np.ndarray, normalize: bool = True) -> None:
        advantages = np.asarray(advantages, dtype=np.float64)
        if normalize and advantages.size > 1:
            std = advantages.std()
            advantages = (advantages - advantages.mean()) / (std + 1e-8)
        self.advantages = advantages
        self.returns = np.asarray(returns, dtype=np.float64)

    def minibatches(self, batch_size: int, rng: RngLike = None) -> Iterator[Dict[str, np.ndarray]]:
        """Yield shuffled minibatches of the stored transitions."""

        if self.advantages is None or self.returns is None:
            raise RuntimeError("set_advantages() must be called before minibatches()")
        data = self.arrays()
        count = len(self)
        order = get_rng(rng).permutation(count)
        for start in range(0, count, batch_size):
            index = order[start : start + batch_size]
            yield {
                "states": data["states"][index],
                "actions": data["actions"][index],
                "log_probs": data["log_probs"][index],
                "advantages": self.advantages[index],
                "returns": self.returns[index],
            }

    def clear(self) -> None:
        self.states.clear()
        self.actions.clear()
        self.rewards.clear()
        self.dones.clear()
        self.values.clear()
        self.log_probs.clear()
        self.advantages = None
        self.returns = None
        self.last_value = 0.0


class ReplayBuffer:
    """Fixed-capacity uniform replay memory ``D`` used by DDPG (Algorithm 1, line 1)."""

    def __init__(self, capacity: int, state_dim: int, action_dim: int, rng: RngLike = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.state_dim = int(state_dim)
        self.action_dim = int(action_dim)
        self._rng = get_rng(rng)
        self._states = np.zeros((capacity, state_dim))
        self._actions = np.zeros((capacity, action_dim))
        self._rewards = np.zeros(capacity)
        self._next_states = np.zeros((capacity, state_dim))
        self._dones = np.zeros(capacity)
        self._cursor = 0
        self._size = 0

    def add(self, state, action, reward, next_state, done) -> None:
        index = self._cursor
        self._states[index] = np.asarray(state, dtype=np.float64)
        self._actions[index] = np.atleast_1d(np.asarray(action, dtype=np.float64))
        self._rewards[index] = float(reward)
        self._next_states[index] = np.asarray(next_state, dtype=np.float64)
        self._dones[index] = 1.0 if done else 0.0
        self._cursor = (self._cursor + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def __len__(self) -> int:
        return self._size

    def sample(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if self._size == 0:
            raise RuntimeError("cannot sample from an empty replay buffer")
        batch_size = min(batch_size, self._size)
        index = self._rng.integers(0, self._size, size=batch_size)
        return (
            self._states[index].copy(),
            self._actions[index].copy(),
            self._rewards[index].copy(),
            self._next_states[index].copy(),
            self._dones[index].copy(),
        )
