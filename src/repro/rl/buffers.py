"""Experience storage: on-policy rollout buffer (PPO) and replay memory (DDPG)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.utils.dtypes import resolve_training_dtype
from repro.utils.seeding import RngLike, get_rng


@dataclass
class RolloutBuffer:
    """Stores one batch of on-policy transitions for PPO.

    Transitions are appended step by step -- one scalar transition at a
    time (:meth:`add`, ``num_envs = 1``) or one ``(N, ...)`` slice of ``N``
    parallel environments per vector step (:meth:`add_batch`).  Episode
    boundaries are recorded through the per-environment ``done`` flags so
    GAE can reset its accumulator column by column.  After advantages are
    attached, :meth:`minibatches` yields shuffled index batches over the
    flattened ``T * N`` transitions for the policy/value updates.

    The flattened ordering is time-major (all environments' step ``t``
    before any step ``t + 1``); with ``num_envs = 1`` it reduces exactly to
    the historical scalar append order.

    ``dtype`` selects the storage precision of the float arrays
    (``"float64"``, the default and the historical behavior, or
    ``"float32"`` for the reduced-precision training mode -- see
    :mod:`repro.utils.dtypes`).
    """

    states: List[np.ndarray] = field(default_factory=list)
    actions: List[np.ndarray] = field(default_factory=list)
    rewards: List[float] = field(default_factory=list)
    dones: List[bool] = field(default_factory=list)
    values: List[float] = field(default_factory=list)
    log_probs: List[float] = field(default_factory=list)
    #: Number of parallel environments feeding the buffer.
    num_envs: int = 1
    #: Storage precision of the float arrays ("float64" or "float32").
    dtype: str = "float64"
    #: Bootstrap value of the single environment's final observation.
    last_value: float = 0.0
    #: Per-environment bootstrap values, shape ``(num_envs,)``; preferred
    #: over ``last_value`` when set (the vectorized collection path sets it).
    last_values: Optional[np.ndarray] = None
    advantages: Optional[np.ndarray] = None
    returns: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self._float = resolve_training_dtype(self.dtype)

    def add(
        self,
        state: np.ndarray,
        action: np.ndarray,
        reward: float,
        done: bool,
        value: float,
        log_prob: float,
    ) -> None:
        if self.num_envs != 1:
            raise RuntimeError("add() is for single-env buffers; use add_batch()")
        self.states.append(np.asarray(state, dtype=self._float))
        self.actions.append(np.atleast_1d(np.asarray(action, dtype=self._float)))
        self.rewards.append(float(reward))
        self.dones.append(bool(done))
        self.values.append(float(value))
        self.log_probs.append(float(log_prob))

    def add_batch(
        self,
        states: np.ndarray,
        actions: np.ndarray,
        rewards: np.ndarray,
        dones: np.ndarray,
        values: np.ndarray,
        log_probs: np.ndarray,
    ) -> None:
        """Append one lockstep transition of all ``num_envs`` environments.

        Expects ``states (N, state_dim)``, ``actions (N, action_dim)`` and
        ``(N,)`` vectors for the scalars, where ``N == num_envs``.
        """

        states = np.atleast_2d(np.asarray(states, dtype=self._float))
        actions = np.atleast_2d(np.asarray(actions, dtype=self._float))
        if len(states) != self.num_envs or len(actions) != self.num_envs:
            raise ValueError(f"add_batch() expects {self.num_envs} rows, got {len(states)}")
        self.states.append(states.copy())
        self.actions.append(actions.copy())
        self.rewards.append(np.asarray(rewards, dtype=self._float).reshape(self.num_envs).copy())
        self.dones.append(np.asarray(dones, dtype=bool).reshape(self.num_envs).copy())
        self.values.append(np.asarray(values, dtype=self._float).reshape(self.num_envs).copy())
        self.log_probs.append(np.asarray(log_probs, dtype=self._float).reshape(self.num_envs).copy())

    @property
    def vectorized(self) -> bool:
        """Whether the buffer holds ``(N, ...)`` slices from :meth:`add_batch`."""

        return bool(self.states) and np.asarray(self.states[0]).ndim == 2

    def __len__(self) -> int:
        """Total stored transitions (``T * num_envs`` for a vectorized buffer)."""

        if self.vectorized:
            return len(self.rewards) * self.num_envs
        return len(self.rewards)

    def time_major(self) -> Dict[str, np.ndarray]:
        """Stacked ``(T, N, ...)`` / ``(T, N)`` views for the batched GAE.

        A buffer filled through the scalar :meth:`add` path is treated as
        ``N = 1``: the arrays gain a singleton environment axis.
        """

        horizon = len(self.rewards)
        envs = self.num_envs if self.vectorized else 1
        states = np.asarray(self.states, dtype=self._float).reshape(horizon, envs, -1)
        actions = np.asarray(self.actions, dtype=self._float).reshape(horizon, envs, -1)
        return {
            "states": states,
            "actions": actions,
            "rewards": np.asarray(self.rewards, dtype=self._float).reshape(horizon, envs),
            "dones": np.asarray(self.dones, dtype=bool).reshape(horizon, envs),
            "values": np.asarray(self.values, dtype=self._float).reshape(horizon, envs),
            "log_probs": np.asarray(self.log_probs, dtype=self._float).reshape(horizon, envs),
        }

    def bootstrap_values(self) -> np.ndarray:
        """The per-environment GAE bootstrap, shape ``(num_envs,)``."""

        if self.last_values is not None:
            return np.asarray(self.last_values, dtype=self._float).reshape(self.num_envs)
        return np.full(self.num_envs, float(self.last_value), dtype=self._float)

    def arrays(self) -> Dict[str, np.ndarray]:
        """Flattened ``(T * N, ...)`` arrays in time-major order."""

        if self.vectorized:
            states = np.asarray(self.states)
            actions = np.asarray(self.actions)
            return {
                "states": states.reshape(-1, states.shape[-1]),
                "actions": actions.reshape(-1, actions.shape[-1]),
                "rewards": np.asarray(self.rewards).reshape(-1),
                "dones": np.asarray(self.dones, dtype=bool).reshape(-1),
                "values": np.asarray(self.values).reshape(-1),
                "log_probs": np.asarray(self.log_probs).reshape(-1),
            }
        return {
            "states": np.asarray(self.states),
            "actions": np.asarray(self.actions),
            "rewards": np.asarray(self.rewards),
            "dones": np.asarray(self.dones, dtype=bool),
            "values": np.asarray(self.values),
            "log_probs": np.asarray(self.log_probs),
        }

    def set_advantages(self, advantages: np.ndarray, returns: np.ndarray, normalize: bool = True) -> None:
        advantages = np.asarray(advantages, dtype=self._float)
        if normalize and advantages.size > 1:
            std = advantages.std()
            advantages = (advantages - advantages.mean()) / (std + 1e-8)
        self.advantages = advantages
        self.returns = np.asarray(returns, dtype=self._float)

    def minibatches(self, batch_size: int, rng: RngLike = None) -> Iterator[Dict[str, np.ndarray]]:
        """Yield shuffled minibatches of the stored transitions."""

        if self.advantages is None or self.returns is None:
            raise RuntimeError("set_advantages() must be called before minibatches()")
        data = self.arrays()
        count = len(self)
        order = get_rng(rng).permutation(count)
        for start in range(0, count, batch_size):
            index = order[start : start + batch_size]
            yield {
                "states": data["states"][index],
                "actions": data["actions"][index],
                "log_probs": data["log_probs"][index],
                "advantages": self.advantages[index],
                "returns": self.returns[index],
            }

    def clear(self) -> None:
        self.states.clear()
        self.actions.clear()
        self.rewards.clear()
        self.dones.clear()
        self.values.clear()
        self.log_probs.clear()
        self.advantages = None
        self.returns = None
        self.last_value = 0.0
        self.last_values = None


class ReplayBuffer:
    """Fixed-capacity uniform replay memory ``D`` used by DDPG (Algorithm 1, line 1)."""

    def __init__(self, capacity: int, state_dim: int, action_dim: int, rng: RngLike = None):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.state_dim = int(state_dim)
        self.action_dim = int(action_dim)
        self._rng = get_rng(rng)
        self._states = np.zeros((capacity, state_dim))
        self._actions = np.zeros((capacity, action_dim))
        self._rewards = np.zeros(capacity)
        self._next_states = np.zeros((capacity, state_dim))
        self._dones = np.zeros(capacity)
        self._cursor = 0
        self._size = 0

    def add(self, state, action, reward, next_state, done) -> None:
        index = self._cursor
        self._states[index] = np.asarray(state, dtype=np.float64)
        self._actions[index] = np.atleast_1d(np.asarray(action, dtype=np.float64))
        self._rewards[index] = float(reward)
        self._next_states[index] = np.asarray(next_state, dtype=np.float64)
        self._dones[index] = 1.0 if done else 0.0
        self._cursor = (self._cursor + 1) % self.capacity
        self._size = min(self._size + 1, self.capacity)

    def __len__(self) -> int:
        return self._size

    def sample(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        if self._size == 0:
            raise RuntimeError("cannot sample from an empty replay buffer")
        batch_size = min(batch_size, self._size)
        index = self._rng.integers(0, self._size, size=batch_size)
        return (
            self._states[index].copy(),
            self._actions[index].copy(),
            self._rewards[index].copy(),
            self._next_states[index].copy(),
            self._dones[index].copy(),
        )
