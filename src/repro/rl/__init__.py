"""Reinforcement-learning substrate: PPO and DDPG implemented from scratch.

The paper trains (a) the expert neural controllers with DDPG under different
hyper-parameters and (b) the adaptive-mixing policy with PPO (Algorithm 1,
line 10; Remark 1 notes DDPG also works).  Neither PyTorch nor an RL library
is available offline, so this package implements both algorithms on top of
:mod:`repro.autodiff` / :mod:`repro.nn`.
"""

from repro.rl.spaces import BoxSpace, DiscreteSpace
from repro.rl.env import ControlEnv, RewardFunction, VecControlEnv, VecMixingEnv
from repro.rl.buffers import ReplayBuffer, RolloutBuffer
from repro.rl.gae import compute_gae, compute_gae_batch, discounted_returns
from repro.rl.policies import (
    CategoricalMLPPolicy,
    DeterministicMLPPolicy,
    GaussianMLPPolicy,
    QNetwork,
    ValueNetwork,
)
from repro.rl.ppo import PPOConfig, PPOTrainer
from repro.rl.ddpg import DDPGConfig, DDPGTrainer

__all__ = [
    "BoxSpace",
    "DiscreteSpace",
    "ControlEnv",
    "RewardFunction",
    "VecControlEnv",
    "VecMixingEnv",
    "RolloutBuffer",
    "ReplayBuffer",
    "compute_gae",
    "compute_gae_batch",
    "discounted_returns",
    "GaussianMLPPolicy",
    "CategoricalMLPPolicy",
    "DeterministicMLPPolicy",
    "ValueNetwork",
    "QNetwork",
    "PPOConfig",
    "PPOTrainer",
    "DDPGConfig",
    "DDPGTrainer",
]
