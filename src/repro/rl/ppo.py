"""Proximal Policy Optimization.

Implements the update of Algorithm 1 line 10: maximise the importance-ratio
surrogate with either the adaptive KL penalty (the form written in the paper)
or the clipped objective (the more common PPO variant, also supported so that
the ablation benchmarks can compare the two).  Works with both the Gaussian
policy (adaptive mixing, continuous weights) and the categorical policy (the
switching baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.autodiff import Tensor, functional
from repro.nn.optim import Adam
from repro.rl.buffers import RolloutBuffer
from repro.rl.env import ControlEnv
from repro.rl.gae import compute_gae_batch
from repro.rl.policies import CategoricalMLPPolicy, GaussianMLPPolicy, ValueNetwork
from repro.utils.dtypes import resolve_training_dtype
from repro.utils.logging import TrainingLogger
from repro.utils.seeding import RngLike, get_rng


@dataclass
class PPOConfig:
    """Hyper-parameters of the PPO trainer."""

    epochs: int = 50
    steps_per_epoch: int = 2048
    #: Parallel environments advanced in lockstep while collecting rollouts.
    #: ``1`` is the scalar path (bit-identical to the historical per-step
    #: loop for the same seed); larger values batch the policy/value forward
    #: passes and the plant updates across environments.
    num_envs: int = 1
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_ratio: float = 0.2
    kl_coefficient: float = 1.0
    target_kl: float = 0.02
    objective: str = "clip"  # "clip" or "kl" (the paper's Algorithm 1 form)
    policy_lr: float = 3e-4
    value_lr: float = 1e-3
    update_iterations: int = 10
    minibatch_size: int = 256
    entropy_coefficient: float = 0.0
    max_grad_norm: float = 5.0
    hidden_sizes: tuple = (64, 64)
    #: Precision of the rollout buffer and GAE ("float64" or "float32").
    #: float32 is a training-only speed/memory mode; verification always
    #: runs in float64 (see :mod:`repro.utils.dtypes`).
    dtype: str = "float64"
    seed: Optional[int] = None
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.objective not in ("clip", "kl"):
            raise ValueError("objective must be 'clip' or 'kl'")
        if self.epochs <= 0 or self.steps_per_epoch <= 0:
            raise ValueError("epochs and steps_per_epoch must be positive")
        if self.num_envs <= 0:
            raise ValueError("num_envs must be positive")
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")
        resolve_training_dtype(self.dtype)


PolicyType = Union[GaussianMLPPolicy, CategoricalMLPPolicy]


class _SingleEnvVecAdapter:
    """Batch-of-one vectorised view of a plain gym-like environment.

    Lets the vectorised collection loop drive environments that expose only
    the scalar ``reset``/``step`` API (e.g. the toy test environments).
    Every call forwards to the wrapped environment unchanged, so the random
    stream consumption is identical to the historical scalar loop.
    """

    num_envs = 1

    def __init__(self, env):
        self.env = env

    def reset(self) -> np.ndarray:
        return np.atleast_2d(np.asarray(self.env.reset(), dtype=np.float64))

    def step(self, actions: np.ndarray):
        action = np.asarray(actions)[0]
        observation, reward, done, info = self.env.step(action)
        if done:
            observation = self.env.reset()
        return (
            np.atleast_2d(np.asarray(observation, dtype=np.float64)),
            np.array([float(reward)]),
            np.array([bool(done)]),
            info,
        )


class PPOTrainer:
    """On-policy trainer coupling a policy, a value network and an environment."""

    def __init__(
        self,
        env: ControlEnv,
        policy: Optional[PolicyType] = None,
        value_network: Optional[ValueNetwork] = None,
        config: Optional[PPOConfig] = None,
        rng: RngLike = None,
    ):
        self.env = env
        self.config = config if config is not None else PPOConfig()
        self._rng = get_rng(rng if rng is not None else self.config.seed)
        if policy is None:
            policy = GaussianMLPPolicy(
                env.state_dim,
                env.action_dim,
                env.action_space.low,
                env.action_space.high,
                hidden_sizes=self.config.hidden_sizes,
                seed=self.config.seed,
            )
        self.policy = policy
        self.value_network = value_network if value_network is not None else ValueNetwork(
            env.state_dim, hidden_sizes=self.config.hidden_sizes, seed=self.config.seed
        )
        self.policy_optimizer = Adam(self.policy.parameters(), lr=self.config.policy_lr)
        self.value_optimizer = Adam(self.value_network.parameters(), lr=self.config.value_lr)
        self.logger = TrainingLogger("ppo", verbose=self.config.verbose)
        self._kl_coefficient = self.config.kl_coefficient
        self._vec_env = None

    # ------------------------------------------------------------------
    # Data collection
    # ------------------------------------------------------------------
    def _vectorized_env(self):
        """The ``num_envs``-wide lockstep view of the training environment.

        Environments exposing :meth:`~repro.rl.env.ControlEnv.vectorized`
        (every :class:`ControlEnv`) are vectorised natively; plain gym-like
        environments fall back to a batch-of-one adapter, which supports
        only ``num_envs = 1``.
        """

        num_envs = self.config.num_envs
        if self._vec_env is not None and self._vec_env.num_envs == num_envs:
            return self._vec_env
        vectorize = getattr(self.env, "vectorized", None)
        if vectorize is not None:
            self._vec_env = vectorize(num_envs)
        elif num_envs == 1:
            self._vec_env = _SingleEnvVecAdapter(self.env)
        else:
            raise ValueError(
                f"num_envs={num_envs} requires an environment with a vectorized() "
                f"method; {type(self.env).__name__} has none"
            )
        return self._vec_env

    def collect_rollouts(self, steps: int) -> RolloutBuffer:
        """Run the current policy for at least ``steps`` transitions.

        The policy acts on all ``num_envs`` environments in lockstep: one
        batched policy sample, one batched value evaluation and one batched
        environment step per iteration, with per-environment episode resets
        handled by the vectorised environment.  ``ceil(steps / num_envs)``
        lockstep iterations are executed, so the buffer holds
        ``num_envs * ceil(steps / num_envs)`` transitions (exactly
        ``steps`` when ``num_envs`` divides it; ``num_envs = 1`` reproduces
        the historical scalar loop bit for bit).
        """

        vec_env = self._vectorized_env()
        num_envs = vec_env.num_envs
        buffer = RolloutBuffer(num_envs=num_envs, dtype=self.config.dtype)
        observations = vec_env.reset()
        episode_returns = []
        running_returns = np.zeros(num_envs)
        discrete = isinstance(self.policy, CategoricalMLPPolicy)

        for _ in range(-(-int(steps) // num_envs)):
            actions, log_probs = self.policy.act_batch(observations, rng=self._rng)
            values = self.value_network.values(observations)
            stored_actions = actions[:, None].astype(np.float64) if discrete else actions
            next_observations, rewards, dones, _info = vec_env.step(actions)
            buffer.add_batch(observations, stored_actions, rewards, dones, values, log_probs)
            running_returns += rewards
            if np.any(dones):
                episode_returns.extend(float(value) for value in running_returns[dones])
                running_returns[dones] = 0.0
            observations = next_observations
        buffer.last_values = self.value_network.values(observations)
        if episode_returns:
            self._last_mean_return = float(np.mean(episode_returns))
        else:
            self._last_mean_return = float(np.mean(running_returns))
        return buffer

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _policy_loss(self, batch: dict) -> Tensor:
        states = Tensor(batch["states"])
        advantages = Tensor(batch["advantages"])
        old_log_probs = batch["log_probs"]
        if isinstance(self.policy, CategoricalMLPPolicy):
            actions = batch["actions"].astype(int).reshape(-1)
            new_log_probs = self.policy.log_prob(states, actions)
        else:
            new_log_probs = self.policy.log_prob(states, batch["actions"])
        ratio = (new_log_probs - Tensor(old_log_probs)).exp()

        if self.config.objective == "clip":
            clipped = ratio.clip(1.0 - self.config.clip_ratio, 1.0 + self.config.clip_ratio)
            surrogate_a = ratio * advantages
            surrogate_b = clipped * advantages
            # elementwise min(a, b) = b + (a - b) clipped to (-inf, 0]
            difference = surrogate_a - surrogate_b
            minimum = surrogate_b + difference.clip(-1e9, 0.0)
            loss = -minimum.mean()
        else:
            surrogate = (ratio * advantages).mean()
            # KL[pi_old || pi_theta] penalty of Algorithm 1 line 10, estimated
            # from the sampled actions via the squared log-ratio, which agrees
            # with KL to second order around the old policy and is
            # differentiable with respect to the new parameters.
            kl = ((new_log_probs - Tensor(old_log_probs)) ** 2).mean() * 0.5
            loss = -(surrogate - self._kl_coefficient * kl)

        if self.config.entropy_coefficient and isinstance(self.policy, GaussianMLPPolicy):
            loss = loss - self.config.entropy_coefficient * self.policy.entropy()
        return loss

    def _value_loss(self, batch: dict) -> Tensor:
        states = Tensor(batch["states"])
        predictions = self.value_network(states)
        targets = batch["returns"].reshape(-1, 1)
        return functional.mse_loss(predictions, targets)

    def update(self, buffer: RolloutBuffer) -> dict:
        """Run the PPO policy and value updates on one rollout buffer."""

        time_major = buffer.time_major()
        advantages, returns = compute_gae_batch(
            time_major["rewards"],
            time_major["values"],
            time_major["dones"],
            gamma=self.config.gamma,
            lam=self.config.gae_lambda,
            last_values=buffer.bootstrap_values(),
            dtype=buffer.dtype,
        )
        # Flatten (T, N) time-major, matching ``RolloutBuffer.arrays()``.
        buffer.set_advantages(advantages.reshape(-1), returns.reshape(-1))

        policy_losses = []
        value_losses = []
        approx_kls = []
        for _ in range(self.config.update_iterations):
            stop = False
            for batch in buffer.minibatches(self.config.minibatch_size, rng=self._rng):
                self.policy_optimizer.zero_grad()
                policy_loss = self._policy_loss(batch)
                policy_loss.backward()
                self.policy_optimizer.clip_grad_norm(self.config.max_grad_norm)
                self.policy_optimizer.step()
                policy_losses.append(float(policy_loss.data))

                self.value_optimizer.zero_grad()
                value_loss = self._value_loss(batch)
                value_loss.backward()
                self.value_optimizer.clip_grad_norm(self.config.max_grad_norm)
                self.value_optimizer.step()
                value_losses.append(float(value_loss.data))

                approx_kl = self._approximate_kl(batch)
                approx_kls.append(approx_kl)
                if approx_kl > 1.5 * self.config.target_kl:
                    stop = True
                    break
            if stop:
                break

        mean_kl = float(np.mean(approx_kls)) if approx_kls else 0.0
        # Adaptive KL coefficient (used by the "kl" objective).
        if mean_kl > 1.5 * self.config.target_kl:
            self._kl_coefficient *= 2.0
        elif mean_kl < self.config.target_kl / 1.5:
            self._kl_coefficient *= 0.5
        self._kl_coefficient = float(np.clip(self._kl_coefficient, 1e-3, 1e3))

        return {
            "policy_loss": float(np.mean(policy_losses)) if policy_losses else 0.0,
            "value_loss": float(np.mean(value_losses)) if value_losses else 0.0,
            "approx_kl": mean_kl,
            "kl_coefficient": self._kl_coefficient,
        }

    def _approximate_kl(self, batch: dict) -> float:
        from repro.autodiff import no_grad

        with no_grad():
            states = Tensor(batch["states"])
            if isinstance(self.policy, CategoricalMLPPolicy):
                actions = batch["actions"].astype(int).reshape(-1)
                new_log_probs = self.policy.log_prob(states, actions).data
            else:
                new_log_probs = self.policy.log_prob(states, batch["actions"]).data
        return float(np.mean(batch["log_probs"] - new_log_probs))

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def train(self, epochs: Optional[int] = None) -> TrainingLogger:
        """Full training loop: collect, update, log; returns the logger."""

        epochs = epochs if epochs is not None else self.config.epochs
        for _ in range(epochs):
            buffer = self.collect_rollouts(self.config.steps_per_epoch)
            stats = self.update(buffer)
            self.logger.log(mean_return=self._last_mean_return, **stats)
        return self.logger
