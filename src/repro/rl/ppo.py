"""Proximal Policy Optimization.

Implements the update of Algorithm 1 line 10: maximise the importance-ratio
surrogate with either the adaptive KL penalty (the form written in the paper)
or the clipped objective (the more common PPO variant, also supported so that
the ablation benchmarks can compare the two).  Works with both the Gaussian
policy (adaptive mixing, continuous weights) and the categorical policy (the
switching baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.autodiff import Tensor, functional
from repro.nn.optim import Adam
from repro.rl.buffers import RolloutBuffer
from repro.rl.env import ControlEnv
from repro.rl.gae import compute_gae
from repro.rl.policies import CategoricalMLPPolicy, GaussianMLPPolicy, ValueNetwork
from repro.utils.logging import TrainingLogger
from repro.utils.seeding import RngLike, get_rng


@dataclass
class PPOConfig:
    """Hyper-parameters of the PPO trainer."""

    epochs: int = 50
    steps_per_epoch: int = 2048
    gamma: float = 0.99
    gae_lambda: float = 0.95
    clip_ratio: float = 0.2
    kl_coefficient: float = 1.0
    target_kl: float = 0.02
    objective: str = "clip"  # "clip" or "kl" (the paper's Algorithm 1 form)
    policy_lr: float = 3e-4
    value_lr: float = 1e-3
    update_iterations: int = 10
    minibatch_size: int = 256
    entropy_coefficient: float = 0.0
    max_grad_norm: float = 5.0
    hidden_sizes: tuple = (64, 64)
    seed: Optional[int] = None
    verbose: bool = False

    def __post_init__(self) -> None:
        if self.objective not in ("clip", "kl"):
            raise ValueError("objective must be 'clip' or 'kl'")
        if self.epochs <= 0 or self.steps_per_epoch <= 0:
            raise ValueError("epochs and steps_per_epoch must be positive")
        if not 0.0 < self.gamma <= 1.0:
            raise ValueError("gamma must be in (0, 1]")


PolicyType = Union[GaussianMLPPolicy, CategoricalMLPPolicy]


class PPOTrainer:
    """On-policy trainer coupling a policy, a value network and an environment."""

    def __init__(
        self,
        env: ControlEnv,
        policy: Optional[PolicyType] = None,
        value_network: Optional[ValueNetwork] = None,
        config: Optional[PPOConfig] = None,
        rng: RngLike = None,
    ):
        self.env = env
        self.config = config if config is not None else PPOConfig()
        self._rng = get_rng(rng if rng is not None else self.config.seed)
        if policy is None:
            policy = GaussianMLPPolicy(
                env.state_dim,
                env.action_dim,
                env.action_space.low,
                env.action_space.high,
                hidden_sizes=self.config.hidden_sizes,
                seed=self.config.seed,
            )
        self.policy = policy
        self.value_network = value_network if value_network is not None else ValueNetwork(
            env.state_dim, hidden_sizes=self.config.hidden_sizes, seed=self.config.seed
        )
        self.policy_optimizer = Adam(self.policy.parameters(), lr=self.config.policy_lr)
        self.value_optimizer = Adam(self.value_network.parameters(), lr=self.config.value_lr)
        self.logger = TrainingLogger("ppo", verbose=self.config.verbose)
        self._kl_coefficient = self.config.kl_coefficient

    # ------------------------------------------------------------------
    # Data collection
    # ------------------------------------------------------------------
    def collect_rollouts(self, steps: int) -> RolloutBuffer:
        """Run the current policy in the environment for ``steps`` transitions."""

        buffer = RolloutBuffer()
        observation = self.env.reset()
        episode_returns = []
        episode_return = 0.0
        discrete = isinstance(self.policy, CategoricalMLPPolicy)

        for _ in range(steps):
            action, log_prob = self.policy.act(observation, rng=self._rng)
            value = self.value_network.value(observation)
            stored_action = np.array([action]) if discrete else action
            next_observation, reward, done, _info = self.env.step(action)
            buffer.add(observation, stored_action, reward, done, value, log_prob)
            episode_return += reward
            observation = next_observation
            if done:
                episode_returns.append(episode_return)
                episode_return = 0.0
                observation = self.env.reset()
        buffer.last_value = self.value_network.value(observation)
        if episode_returns:
            self._last_mean_return = float(np.mean(episode_returns))
        else:
            self._last_mean_return = episode_return
        return buffer

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def _policy_loss(self, batch: dict) -> Tensor:
        states = Tensor(batch["states"])
        advantages = Tensor(batch["advantages"])
        old_log_probs = batch["log_probs"]
        if isinstance(self.policy, CategoricalMLPPolicy):
            actions = batch["actions"].astype(int).reshape(-1)
            new_log_probs = self.policy.log_prob(states, actions)
        else:
            new_log_probs = self.policy.log_prob(states, batch["actions"])
        ratio = (new_log_probs - Tensor(old_log_probs)).exp()

        if self.config.objective == "clip":
            clipped = ratio.clip(1.0 - self.config.clip_ratio, 1.0 + self.config.clip_ratio)
            surrogate_a = ratio * advantages
            surrogate_b = clipped * advantages
            # elementwise min(a, b) = b + (a - b) clipped to (-inf, 0]
            difference = surrogate_a - surrogate_b
            minimum = surrogate_b + difference.clip(-1e9, 0.0)
            loss = -minimum.mean()
        else:
            surrogate = (ratio * advantages).mean()
            # KL[pi_old || pi_theta] penalty of Algorithm 1 line 10, estimated
            # from the sampled actions via the squared log-ratio, which agrees
            # with KL to second order around the old policy and is
            # differentiable with respect to the new parameters.
            kl = ((new_log_probs - Tensor(old_log_probs)) ** 2).mean() * 0.5
            loss = -(surrogate - self._kl_coefficient * kl)

        if self.config.entropy_coefficient and isinstance(self.policy, GaussianMLPPolicy):
            loss = loss - self.config.entropy_coefficient * self.policy.entropy()
        return loss

    def _value_loss(self, batch: dict) -> Tensor:
        states = Tensor(batch["states"])
        predictions = self.value_network(states)
        targets = batch["returns"].reshape(-1, 1)
        return functional.mse_loss(predictions, targets)

    def update(self, buffer: RolloutBuffer) -> dict:
        """Run the PPO policy and value updates on one rollout buffer."""

        data = buffer.arrays()
        advantages, returns = compute_gae(
            data["rewards"],
            data["values"],
            data["dones"],
            gamma=self.config.gamma,
            lam=self.config.gae_lambda,
            last_value=buffer.last_value,
        )
        buffer.set_advantages(advantages, returns)

        policy_losses = []
        value_losses = []
        approx_kls = []
        for _ in range(self.config.update_iterations):
            stop = False
            for batch in buffer.minibatches(self.config.minibatch_size, rng=self._rng):
                self.policy_optimizer.zero_grad()
                policy_loss = self._policy_loss(batch)
                policy_loss.backward()
                self.policy_optimizer.clip_grad_norm(self.config.max_grad_norm)
                self.policy_optimizer.step()
                policy_losses.append(float(policy_loss.data))

                self.value_optimizer.zero_grad()
                value_loss = self._value_loss(batch)
                value_loss.backward()
                self.value_optimizer.clip_grad_norm(self.config.max_grad_norm)
                self.value_optimizer.step()
                value_losses.append(float(value_loss.data))

                approx_kl = self._approximate_kl(batch)
                approx_kls.append(approx_kl)
                if approx_kl > 1.5 * self.config.target_kl:
                    stop = True
                    break
            if stop:
                break

        mean_kl = float(np.mean(approx_kls)) if approx_kls else 0.0
        # Adaptive KL coefficient (used by the "kl" objective).
        if mean_kl > 1.5 * self.config.target_kl:
            self._kl_coefficient *= 2.0
        elif mean_kl < self.config.target_kl / 1.5:
            self._kl_coefficient *= 0.5
        self._kl_coefficient = float(np.clip(self._kl_coefficient, 1e-3, 1e3))

        return {
            "policy_loss": float(np.mean(policy_losses)) if policy_losses else 0.0,
            "value_loss": float(np.mean(value_losses)) if value_losses else 0.0,
            "approx_kl": mean_kl,
            "kl_coefficient": self._kl_coefficient,
        }

    def _approximate_kl(self, batch: dict) -> float:
        from repro.autodiff import no_grad

        with no_grad():
            states = Tensor(batch["states"])
            if isinstance(self.policy, CategoricalMLPPolicy):
                actions = batch["actions"].astype(int).reshape(-1)
                new_log_probs = self.policy.log_prob(states, actions).data
            else:
                new_log_probs = self.policy.log_prob(states, batch["actions"]).data
        return float(np.mean(batch["log_probs"] - new_log_probs))

    # ------------------------------------------------------------------
    # Training loop
    # ------------------------------------------------------------------
    def train(self, epochs: Optional[int] = None) -> TrainingLogger:
        """Full training loop: collect, update, log; returns the logger."""

        epochs = epochs if epochs is not None else self.config.epochs
        for _ in range(epochs):
            buffer = self.collect_rollouts(self.config.steps_per_epoch)
            stats = self.update(buffer)
            self.logger.log(mean_return=self._last_mean_return, **stats)
        return self.logger
