"""Action/observation spaces, a minimal stand-in for ``gym.spaces``."""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.utils.seeding import RngLike, get_rng


class BoxSpace:
    """Continuous box space ``[low, high]^n``."""

    def __init__(self, low: Union[float, Sequence[float]], high: Union[float, Sequence[float]], dimension: int = None):
        low = np.asarray(low, dtype=np.float64)
        high = np.asarray(high, dtype=np.float64)
        if low.ndim == 0:
            if dimension is None:
                raise ValueError("dimension required for scalar bounds")
            low = np.full(dimension, float(low))
        if high.ndim == 0:
            high = np.full(low.shape, float(high))
        if low.shape != high.shape:
            raise ValueError("low and high must have the same shape")
        if np.any(high < low):
            raise ValueError("expected low <= high")
        self.low = low
        self.high = high

    @property
    def dimension(self) -> int:
        return int(self.low.size)

    def sample(self, rng: RngLike = None) -> np.ndarray:
        return get_rng(rng).uniform(self.low, self.high)

    def contains(self, value: Sequence[float]) -> bool:
        value = np.asarray(value, dtype=np.float64)
        return bool(np.all(value >= self.low) and np.all(value <= self.high))

    def clip(self, value: Sequence[float]) -> np.ndarray:
        return np.clip(np.asarray(value, dtype=np.float64), self.low, self.high)

    def __repr__(self) -> str:
        return f"BoxSpace(dim={self.dimension})"


class DiscreteSpace:
    """Finite space ``{0, ..., n-1}`` used by the switching baseline."""

    def __init__(self, n: int):
        if n <= 0:
            raise ValueError("n must be positive")
        self.n = int(n)

    @property
    def dimension(self) -> int:
        return 1

    def sample(self, rng: RngLike = None) -> int:
        return int(get_rng(rng).integers(0, self.n))

    def contains(self, value) -> bool:
        value = int(value)
        return 0 <= value < self.n

    def __repr__(self) -> str:
        return f"DiscreteSpace(n={self.n})"
