"""Reproduction of "Cocktail: Learn a Better Neural Network Controller from
Multiple Experts via Adaptive Mixing and Robust Distillation" (DAC 2021).

The public API mirrors the paper's workflow::

    from repro import (
        make_system, make_default_experts, CocktailConfig, CocktailPipeline,
        evaluate_controllers,
    )

    system = make_system("vanderpol")
    experts = make_default_experts(system)
    result = CocktailPipeline(system, experts, CocktailConfig.fast()).run()
    metrics = evaluate_controllers(system, result.controllers(), samples=100)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the mapping
between the paper's tables/figures and the benchmark harnesses.
"""

from repro.core import (
    CocktailConfig,
    CocktailPipeline,
    CocktailResult,
    DirectDistiller,
    DistillationConfig,
    MixedController,
    MixingConfig,
    MixingTrainer,
    RobustDistiller,
)
from repro.experts import Controller, make_default_experts
from repro.metrics import evaluate_controller, evaluate_controllers
from repro.systems import (
    Box,
    CartPole,
    ControlSystem,
    ThreeDimensionalSystem,
    VanDerPolOscillator,
    make_system,
)
from repro.utils import set_global_seed

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # systems
    "Box",
    "ControlSystem",
    "VanDerPolOscillator",
    "ThreeDimensionalSystem",
    "CartPole",
    "make_system",
    # experts
    "Controller",
    "make_default_experts",
    # core framework
    "CocktailConfig",
    "MixingConfig",
    "DistillationConfig",
    "CocktailPipeline",
    "CocktailResult",
    "MixingTrainer",
    "MixedController",
    "RobustDistiller",
    "DirectDistiller",
    # evaluation
    "evaluate_controller",
    "evaluate_controllers",
    # utilities
    "set_global_seed",
]
