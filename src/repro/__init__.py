"""Reproduction of "Cocktail: Learn a Better Neural Network Controller from
Multiple Experts via Adaptive Mixing and Robust Distillation" (DAC 2021).

The public API mirrors the paper's workflow::

    from repro import (
        make_system, make_default_experts, CocktailConfig, CocktailPipeline,
        evaluate_controllers,
    )

    system = make_system("vanderpol")
    experts = make_default_experts(system)
    result = CocktailPipeline(system, experts, CocktailConfig.fast()).run()
    metrics = evaluate_controllers(system, result.controllers(), samples=100)

Plants are resolved through the scenario catalog (:mod:`repro.scenarios`):
``make_system`` accepts any registered scenario name -- the paper's three
systems plus the catalog extensions -- including parameter-overridable
variants such as ``"vanderpol?mu=1.5"``, and ``register_scenario`` wires a
new workload into the factories, the verifier and the CLI at once.

See README.md for install/quickstart, docs/architecture.md for the module
map (including the batched Monte-Carlo rollout engine that all metrics run
on) and docs/scenarios.md for the scenario catalog; the ``benchmarks/``
harnesses regenerate the paper's tables and figures.
"""

from repro.core import (
    CocktailConfig,
    CocktailPipeline,
    CocktailResult,
    DirectDistiller,
    DistillationConfig,
    EvaluationConfig,
    MixedController,
    MixingConfig,
    MixingTrainer,
    RobustDistiller,
)
from repro.experiments import RunStore, config_digest
from repro.experts import Controller, make_default_experts
from repro.metrics import evaluate_controller, evaluate_controllers
from repro.scenarios import (
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register_scenario,
    run_scenario_matrix,
)
from repro.systems import (
    AdaptiveCruiseControl,
    Box,
    CartPole,
    ControlSystem,
    InvertedPendulum,
    ThreeDimensionalSystem,
    VanDerPolOscillator,
    make_system,
)
from repro.utils import set_global_seed

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # systems
    "Box",
    "ControlSystem",
    "VanDerPolOscillator",
    "ThreeDimensionalSystem",
    "CartPole",
    "InvertedPendulum",
    "AdaptiveCruiseControl",
    "make_system",
    # scenarios
    "ScenarioSpec",
    "register_scenario",
    "get_scenario",
    "list_scenarios",
    "run_scenario_matrix",
    # experiments
    "RunStore",
    "config_digest",
    # experts
    "Controller",
    "make_default_experts",
    # core framework
    "CocktailConfig",
    "MixingConfig",
    "DistillationConfig",
    "EvaluationConfig",
    "CocktailPipeline",
    "CocktailResult",
    "MixingTrainer",
    "MixedController",
    "RobustDistiller",
    "DirectDistiller",
    # evaluation
    "evaluate_controller",
    "evaluate_controllers",
    # utilities
    "set_global_seed",
]
