"""Text-based plotting helpers.

The offline environment has no matplotlib, so the examples and benchmark
harnesses render their "figures" as plain text: a sparkline-style series
plot for the Fig. 2 control signals, an ASCII heatmap for the Fig. 3
invariant-set mask, and an interval table for the Fig. 4 reachable boxes.
All functions return strings so callers decide whether to print or save.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

_SPARK_LEVELS = " .:-=+*#%@"


def ascii_series(
    values: Sequence[float],
    width: int = 80,
    title: Optional[str] = None,
    symmetric: bool = True,
) -> str:
    """Render a 1-D series as a single-line sparkline plus range annotation.

    ``symmetric=True`` centres the glyph scale on zero, which suits
    normalised control signals in ``[-1, 1]``.
    """

    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return (title + ": " if title else "") + "(empty series)"
    if values.size > width:
        # Downsample by averaging consecutive chunks so the line fits.
        chunks = np.array_split(values, width)
        values = np.array([chunk.mean() for chunk in chunks])
    limit = float(np.max(np.abs(values))) if symmetric else float(np.max(values) - np.min(values))
    limit = limit if limit > 0 else 1.0
    if symmetric:
        normalised = (values / limit + 1.0) / 2.0
    else:
        normalised = (values - np.min(values)) / limit
    indices = np.clip((normalised * (len(_SPARK_LEVELS) - 1)).round().astype(int), 0, len(_SPARK_LEVELS) - 1)
    line = "".join(_SPARK_LEVELS[index] for index in indices)
    header = f"{title} " if title else ""
    return f"{header}[min {np.min(values):+.3f}, max {np.max(values):+.3f}]\n{line}"


def ascii_heatmap(
    mask: np.ndarray,
    resolution: int,
    title: Optional[str] = None,
    filled: str = "#",
    empty: str = ".",
) -> str:
    """Render a boolean grid mask (e.g. the invariant-set cells) as ASCII art.

    The mask follows the cell ordering of :meth:`repro.systems.Box.subdivide`
    (row-major over the first axis); the plot puts the first axis horizontal
    and the second axis vertical with its positive direction up, matching the
    paper's Fig. 3 orientation for 2-D systems.
    """

    mask = np.asarray(mask, dtype=bool).reshape(resolution, resolution)
    lines: List[str] = []
    if title:
        lines.append(title)
    for row in range(resolution - 1, -1, -1):
        lines.append("".join(filled if mask[col, row] else empty for col in range(resolution)))
    return "\n".join(lines)


def box_series_table(boxes: Sequence, dimensions: Sequence[int] = (0, 1), title: Optional[str] = None) -> str:
    """Tabulate a sequence of boxes (a reachable-set tube) step by step."""

    lines: List[str] = []
    if title:
        lines.append(title)
    header = "step | " + " | ".join(f"dim{d} interval" for d in dimensions)
    lines.append(header)
    lines.append("-" * len(header))
    for step, box in enumerate(boxes):
        cells = [f"[{box.low[d]:+.4f}, {box.high[d]:+.4f}]" for d in dimensions]
        lines.append(f"{step:4d} | " + " | ".join(cells))
    return "\n".join(lines)
