"""Persistence of trained Cocktail artefacts and experiment records.

Two kinds of artefacts are saved:

* **controllers** -- the distilled student networks are written as ``.npz``
  archives (weights + architecture) via :mod:`repro.nn.serialization`, so a
  deployment target can reload κ* without the training stack;
* **experiment records** -- plain JSON dictionaries of metrics (safe rates,
  energies, Lipschitz constants, verification times) with enough metadata
  (system, scale, seed, timestamp is the caller's business) to regenerate a
  table row later.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Union

from repro.experts.base import NeuralController
from repro.nn.serialization import load_state_dict, save_state_dict

PathLike = Union[str, Path]


def save_experiment_record(record: Dict, path: PathLike) -> Path:
    """Write a JSON experiment record (creating parent directories)."""

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True, default=_jsonify)
    return path


def load_experiment_record(path: PathLike) -> Dict:
    with Path(path).open() as handle:
        return json.load(handle)


def save_cocktail_result(result, directory: PathLike, record: Optional[Dict] = None) -> Path:
    """Persist the distilled controllers of a :class:`CocktailResult`.

    Writes ``kappa_star.npz`` (always), ``kappa_d.npz`` (when the direct
    baseline was trained) and ``record.json`` with the experiment record plus
    basic bookkeeping (expert names, dataset size).
    """

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_state_dict(result.student.network, directory / "kappa_star.npz")
    saved = {"kappa_star": "kappa_star.npz"}
    if result.direct_student is not None:
        save_state_dict(result.direct_student.network, directory / "kappa_d.npz")
        saved["kappaD"] = "kappa_d.npz"
    payload = {
        "controllers": saved,
        "experts": [expert.name for expert in result.experts],
        "dataset_size": len(result.dataset),
    }
    if record:
        payload["record"] = record
    save_experiment_record(payload, directory / "record.json")
    return directory


def load_student_controller(directory: PathLike, name: str = "kappa_star") -> NeuralController:
    """Reload a saved student network as a :class:`NeuralController`."""

    directory = Path(directory)
    with (directory / "record.json").open() as handle:
        payload = json.load(handle)
    controllers = payload.get("controllers", {})
    if name not in controllers:
        raise KeyError(f"controller {name!r} not present in {directory}; available: {sorted(controllers)}")
    network = load_state_dict(directory / controllers[name])
    return NeuralController(network, name=name)


def _jsonify(value):
    """Fallback serialiser for NumPy scalars/arrays inside records."""

    if hasattr(value, "item") and getattr(value, "size", None) == 1:
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    raise TypeError(f"cannot serialise {type(value)!r} to JSON")
