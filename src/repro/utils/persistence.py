"""Persistence of trained Cocktail artefacts and experiment records.

Two kinds of artefacts are saved:

* **controllers** -- the distilled student networks are written as ``.npz``
  archives (weights + architecture) via :mod:`repro.nn.serialization`, so a
  deployment target can reload κ* without the training stack;
* **experiment records** -- plain JSON dictionaries of metrics (safe rates,
  energies, Lipschitz constants, verification times) with enough metadata
  to regenerate a table row later.  When the producing
  :class:`~repro.core.cocktail.CocktailResult` carries its config, the
  record also gains the full resolved configuration and its canonical
  :func:`~repro.experiments.digest.config_digest` -- the identity that
  links the record to the run-store entry that produced it.

NumPy values inside records are serialised shape-preservingly (scalars stay
scalars, ``(1,)``-arrays stay one-element lists), so a record's digest
survives a JSON round-trip -- the property the digesting tests pin.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, Optional, Union

import numpy as np

from repro.experts.base import NeuralController
from repro.nn.serialization import load_state_dict, save_state_dict

PathLike = Union[str, Path]


def save_experiment_record(record: Dict, path: PathLike) -> Path:
    """Write a JSON experiment record (creating parent directories)."""

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        json.dump(record, handle, indent=2, sort_keys=True, default=_jsonify)
    return path


def load_experiment_record(path: PathLike) -> Dict:
    with Path(path).open() as handle:
        return json.load(handle)


def save_cocktail_result(
    result,
    directory: PathLike,
    record: Optional[Dict] = None,
    context: Optional[Dict] = None,
    timestamp: bool = True,
    digest: Optional[str] = None,
) -> Path:
    """Persist the distilled controllers of a :class:`CocktailResult`.

    Writes ``kappa_star.npz`` (always), ``kappa_d.npz`` (when the direct
    baseline was trained) and ``record.json`` with the experiment record
    plus basic bookkeeping (expert names, dataset size).  When the result
    carries the :class:`~repro.core.config.CocktailConfig` it was trained
    with, the record additionally stores the full resolved config and the
    canonical digest of ``{config, context}`` -- ``context`` is the
    caller-side identity (system name, seed, ...) that the configuration
    alone does not capture.  ``timestamp=False`` omits ``created_unix``
    (the only non-deterministic field) for byte-stable records.  An
    explicit ``digest`` wins over the computed one; the CLI passes its
    run-store key digest here so ``repro runs show <record digest>``
    resolves to the entry that produced the record.
    """

    from repro.experiments.digest import canonicalize, config_digest

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    save_state_dict(result.student.network, directory / "kappa_star.npz")
    saved = {"kappa_star": "kappa_star.npz"}
    if result.direct_student is not None:
        save_state_dict(result.direct_student.network, directory / "kappa_d.npz")
        saved["kappaD"] = "kappa_d.npz"
    payload = {
        "controllers": saved,
        "experts": [expert.name for expert in result.experts],
        "dataset_size": len(result.dataset),
    }
    config = getattr(result, "config", None)
    if config is not None:
        payload["config"] = canonicalize(config)
    if context:
        payload["context"] = canonicalize(context)
    if digest is not None:
        payload["digest"] = digest
    elif config is not None or context:
        payload["digest"] = config_digest(
            {"config": payload.get("config"), "context": payload.get("context")}
        )
    if timestamp:
        payload["created_unix"] = time.time()
    if record:
        payload["record"] = record
    save_experiment_record(payload, directory / "record.json")
    return directory


def load_student_controller(directory: PathLike, name: str = "kappa_star") -> NeuralController:
    """Reload a saved student network as a :class:`NeuralController`."""

    directory = Path(directory)
    with (directory / "record.json").open() as handle:
        payload = json.load(handle)
    controllers = payload.get("controllers", {})
    if name not in controllers:
        raise KeyError(f"controller {name!r} not present in {directory}; available: {sorted(controllers)}")
    network = load_state_dict(directory / controllers[name])
    return NeuralController(network, name=name)


def _jsonify(value):
    """Fallback serialiser for NumPy scalars/arrays inside records.

    Shape-preserving: only genuine scalars (0-d) collapse to Python
    numbers; any array -- including one of size 1 -- stays a (nested) list,
    so records round-trip through JSON without changing structure (and
    therefore without changing their digest).
    """

    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if hasattr(value, "tolist"):
        return value.tolist()
    raise TypeError(f"cannot serialise {type(value)!r} to JSON")
