"""Deterministic seeding helpers.

Every stochastic component in the reproduction (environments, policies,
attacks, Monte-Carlo estimators) accepts an explicit seed or RNG; these
helpers centralise the conversion and provide a process-wide default seed so
experiments are repeatable end to end.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

RngLike = Union[None, int, np.random.Generator]

_GLOBAL_SEED: Optional[int] = None


def set_global_seed(seed: int) -> None:
    """Set a process-wide default seed used when components receive ``None``."""

    global _GLOBAL_SEED
    _GLOBAL_SEED = int(seed)
    np.random.seed(seed)


def get_global_seed() -> Optional[int]:
    return _GLOBAL_SEED


def get_rng(seed: RngLike = None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` falls back to the global seed (if set) and otherwise to fresh OS
    entropy; an existing generator is passed through unchanged.
    """

    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        seed = _GLOBAL_SEED
    return np.random.default_rng(seed)


def spawn_seeds(seed: RngLike, count: int) -> list:
    """Derive ``count`` child seeds deterministically from ``seed``."""

    rng = get_rng(seed)
    return [int(value) for value in rng.integers(0, 2**31 - 1, size=count)]
