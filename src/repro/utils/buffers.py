"""Reusable scratch-buffer arena for the batched hot-path kernels.

The batched Bernstein / IBP kernels are called thousands of times per
verification run with identical (or slowly growing) shapes; allocating the
grid, block and bound temporaries fresh on every call dominates the
small-batch cost.  :class:`BufferArena` hands out *views* into tag-keyed,
grow-only flat buffers so each distinct temporary in a kernel is allocated
once and reused for the rest of the process.

Two rules keep this sound:

* a buffer obtained from :meth:`BufferArena.take` is **transient scratch**:
  it is valid only until the same tag is requested again, so results that
  outlive the call (coefficient tensors stored in ``CoefficientCache``, the
  arrays a caller receives) must be freshly allocated, never arena views;
* buffers are uninitialised on reuse -- kernels must fully overwrite every
  element they read (the differential test pack and the Hypothesis suite in
  ``tests/test_utils_buffers.py`` pin both properties).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

__all__ = ["BufferArena", "global_arena"]


class BufferArena:
    """Tag-keyed, grow-only scratch buffers returning reshaped views.

    Each ``(tag, dtype)`` pair owns one flat array that only ever grows;
    :meth:`take` returns a ``shape``-shaped view of its prefix.  Asking for
    the same tag twice hands back overlapping memory, so distinct live
    temporaries within one kernel call must use distinct tags.
    """

    def __init__(self) -> None:
        self._buffers: Dict[Tuple[str, object], np.ndarray] = {}

    def take(self, tag: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """A writable ``shape`` view of the ``tag`` buffer (contents arbitrary)."""

        dtype = np.dtype(dtype)
        size = 1
        for extent in shape:  # pure-python product: take() sits on hot paths
            size *= int(extent)
        key = (tag, dtype)
        flat = self._buffers.get(key)
        if flat is None or flat.size < size:
            flat = np.empty(max(size, 1), dtype=dtype)
            self._buffers[key] = flat
        return flat[:size].reshape(shape)

    def zeros(self, tag: str, shape: Tuple[int, ...], dtype=np.float64) -> np.ndarray:
        """Like :meth:`take` but zero-filled."""

        view = self.take(tag, shape, dtype)
        view.fill(0)
        return view

    def owns(self, array: np.ndarray) -> bool:
        """True when ``array`` is a view into this arena (aliasing checks)."""

        base = array
        while base.base is not None:
            base = base.base
        return any(base is flat for flat in self._buffers.values())

    def nbytes(self) -> int:
        """Total bytes currently held across all buffers."""

        return sum(flat.nbytes for flat in self._buffers.values())

    def clear(self) -> None:
        """Drop every buffer (mostly for tests)."""

        self._buffers.clear()


#: Process-wide arena shared by the verification kernels.  Kernel calls are
#: not re-entrant across threads by design (the whole verification engine is
#: single-threaded per process; parallelism is process-based), so one shared
#: arena is safe and maximises reuse.
global_arena = BufferArena()
