"""Shared utilities: seeding, CPU-aware parallel defaults, result tables,
logging, plotting, persistence."""

from repro.utils.seeding import get_rng, set_global_seed
from repro.utils.parallel import (
    available_cpu_count,
    default_num_envs,
    default_train_batch_size,
    default_worker_count,
)
from repro.utils.tables import ResultTable
from repro.utils.logging import TrainingLogger
from repro.utils.plotting import ascii_heatmap, ascii_series, box_series_table

# Note: repro.utils.persistence is intentionally not re-exported here -- it
# depends on the experts/nn layers above this package; import it directly as
# ``from repro.utils.persistence import save_cocktail_result``.

__all__ = [
    "get_rng",
    "set_global_seed",
    "available_cpu_count",
    "default_worker_count",
    "default_num_envs",
    "default_train_batch_size",
    "ResultTable",
    "TrainingLogger",
    "ascii_series",
    "ascii_heatmap",
    "box_series_table",
]
