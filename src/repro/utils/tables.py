"""Plain-text result tables used by the benchmark harnesses.

The benchmark scripts regenerate the paper's Tables I and II; this helper
formats rows the same way the paper lays them out (one metric row per system,
one column per controller) without pulling in any external dependency.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence


class ResultTable:
    """Accumulates named rows of named columns and renders aligned text."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self._rows: List[Dict[str, str]] = []
        self._row_names: List[str] = []

    def add_row(self, name: str, values: Dict[str, object]) -> None:
        """Add one row; missing columns render as '-', extra keys are errors."""

        unknown = set(values) - set(self.columns)
        if unknown:
            raise KeyError(f"unknown columns {sorted(unknown)}; table has {self.columns}")
        formatted = {col: _format(values.get(col)) for col in self.columns}
        self._rows.append(formatted)
        self._row_names.append(name)

    def row_names(self) -> List[str]:
        return list(self._row_names)

    def as_dict(self) -> Dict[str, Dict[str, str]]:
        return {name: dict(row) for name, row in zip(self._row_names, self._rows)}

    def render(self) -> str:
        header = ["metric", *self.columns]
        body = [[name, *[row[col] for col in self.columns]] for name, row in zip(self._row_names, self._rows)]
        widths = [max(len(str(cell)) for cell in column) for column in zip(header, *body)] if body else [len(h) for h in header]
        lines = [self.title, "-" * max(len(self.title), sum(widths) + 3 * len(widths))]
        lines.append(" | ".join(str(cell).ljust(width) for cell, width in zip(header, widths)))
        lines.append("-+-".join("-" * width for width in widths))
        for row in body:
            lines.append(" | ".join(str(cell).ljust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def to_csv(self) -> str:
        lines = [",".join(["metric", *self.columns])]
        for name, row in zip(self._row_names, self._rows):
            lines.append(",".join([name, *[row[col] for col in self.columns]]))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def _format(value: Optional[object]) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)
