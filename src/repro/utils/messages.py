"""Validated, versioned wire messages: the shared ``named_types`` machinery.

One validated frozen dataclass per message -- the class *is* the schema.
Each message declares a wire name (``TYPE``), a ``SCHEMA_VERSION`` and
typed fields checked on construction, so a malformed payload fails loudly
at the producer instead of silently corrupting whatever stream or socket
carries it.  This module is the family-agnostic core extracted from the
telemetry event log (:mod:`repro.telemetry.events`), so the job-service
API (:mod:`repro.jobs.messages`) speaks the exact same dialect:

* ``to_json``/``from_json`` round-trip exactly within one version (tuples
  survive the JSON list round-trip);
* same-version decodes are *strict* -- extra, missing or mistyped fields
  raise :class:`MessageValidationError`;
* newer-version payloads decode best-effort from the fields the reader
  knows, and unknown types wrap instead of raising, so an old client
  keeps working against a newer fleet (:func:`parse_message`).

Each message family owns a plain ``{wire name: class}`` registry dict and
an "unknown" wrapper class; :func:`register_message` populates the
registry, :func:`parse_message`/:func:`decode_message_line` route through
it.

Versioning policy (see ``docs/telemetry.md``): adding an *optional* field
keeps the version; adding a required field, renaming or retyping anything
bumps ``SCHEMA_VERSION``.
"""

from __future__ import annotations

import json
import typing
from dataclasses import MISSING, dataclass, fields
from typing import Any, Callable, ClassVar, Dict, Mapping, Optional, Tuple, Type

__all__ = [
    "MessageValidationError",
    "TypedMessage",
    "register_message",
    "parse_message",
    "decode_message_line",
]


class MessageValidationError(ValueError):
    """A wire-message payload failed its class's field validation."""


_HINT_CACHE: Dict[type, Dict[str, Any]] = {}


def _type_hints(cls: type) -> Dict[str, Any]:
    if cls not in _HINT_CACHE:
        _HINT_CACHE[cls] = typing.get_type_hints(cls)
    return _HINT_CACHE[cls]


def _checked(cls_name: str, name: str, value, annotation):
    """Validate ``value`` against ``annotation``; ints promote to floats."""

    origin = typing.get_origin(annotation)
    if origin is typing.Union:
        arms = typing.get_args(annotation)
        if value is None and type(None) in arms:
            return None
        inner = [arm for arm in arms if arm is not type(None)]
        return _checked(cls_name, name, value, inner[0])
    if annotation is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise MessageValidationError(f"{cls_name}.{name} must be a number, got {value!r}")
        return float(value)
    if annotation is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise MessageValidationError(f"{cls_name}.{name} must be an integer, got {value!r}")
        return value
    if annotation is bool:
        if not isinstance(value, bool):
            raise MessageValidationError(f"{cls_name}.{name} must be a boolean, got {value!r}")
        return value
    if annotation is str:
        if not isinstance(value, str):
            raise MessageValidationError(f"{cls_name}.{name} must be a string, got {value!r}")
        return value
    if origin in (tuple, Tuple):
        if isinstance(value, str) or not isinstance(value, (list, tuple)):
            raise MessageValidationError(f"{cls_name}.{name} must be a sequence, got {value!r}")
        item_type = typing.get_args(annotation)[0]
        return tuple(_checked(cls_name, name, item, item_type) for item in value)
    return value  # Dict / Any fields (unknown-message payloads) pass through


@dataclass(frozen=True)
class TypedMessage:
    """Base of every wire message: typed, validated, versioned.

    Subclasses declare their wire name in ``TYPE``, bump ``SCHEMA_VERSION``
    on incompatible change, and may override :meth:`_validate` for semantic
    checks beyond field typing.
    """

    TYPE: ClassVar[str] = ""
    SCHEMA_VERSION: ClassVar[int] = 1

    def __post_init__(self) -> None:
        hints = _type_hints(type(self))
        for spec in fields(self):
            value = _checked(type(self).__name__, spec.name, getattr(self, spec.name), hints[spec.name])
            object.__setattr__(self, spec.name, value)
        self._validate()

    def _validate(self) -> None:
        """Per-class semantic checks (field types are already enforced)."""

    def to_json(self) -> Dict:
        """The wire payload: ``type`` and ``version`` first, fields in order."""

        payload: Dict = {"type": self.TYPE, "version": self.SCHEMA_VERSION}
        for spec in fields(self):
            value = getattr(self, spec.name)
            payload[spec.name] = list(value) if isinstance(value, tuple) else value
        return payload

    def to_line(self) -> str:
        """One compact JSON line (no newline); the log/socket unit of append."""

        return json.dumps(self.to_json(), separators=(",", ":"))

    @classmethod
    def from_json(cls, payload: Mapping, strict: bool = True) -> "TypedMessage":
        """Rebuild a message from its wire payload.

        ``strict`` (same-version reads) rejects unexpected keys; the
        tolerant mode (newer-version reads) ignores them and falls back to
        field defaults, so old readers survive additive schema growth.
        """

        known = {spec.name for spec in fields(cls)}
        if strict:
            extras = set(payload) - known - {"type", "version"}
            if extras:
                raise MessageValidationError(
                    f"{cls.TYPE} v{cls.SCHEMA_VERSION}: unexpected field(s) {sorted(extras)}"
                )
        kwargs = {}
        for spec in fields(cls):
            if spec.name in payload:
                kwargs[spec.name] = payload[spec.name]
            elif spec.default is MISSING and spec.default_factory is MISSING:
                raise MessageValidationError(f"{cls.TYPE}: missing required field {spec.name!r}")
        return cls(**kwargs)


def register_message(registry: Dict[str, Type[TypedMessage]]) -> Callable:
    """Class decorator factory adding messages to ``registry`` by ``TYPE``."""

    def register(cls: Type[TypedMessage]) -> Type[TypedMessage]:
        if not cls.TYPE:
            raise ValueError(f"{cls.__name__} declares no TYPE wire name")
        if cls.TYPE in registry:
            raise ValueError(f"duplicate message type {cls.TYPE!r}")
        registry[cls.TYPE] = cls
        return cls

    return register


def parse_message(
    payload: Mapping, registry: Mapping[str, Type[TypedMessage]], unknown: Type[TypedMessage]
) -> TypedMessage:
    """Decode one wire payload into its typed message.

    Routing is by the payload's ``type``/``version``: a registered type at
    (or below) this reader's ``SCHEMA_VERSION`` decodes strictly, a *newer*
    version decodes tolerantly from the known fields, and anything else --
    unknown type, unreadable version, a newer payload missing even the
    known required fields -- wraps via ``unknown.wrap(payload)``.  Only a
    same-version malformed payload raises :class:`MessageValidationError`.
    """

    if not isinstance(payload, Mapping):
        raise MessageValidationError(
            f"message payload must be an object, got {type(payload).__name__}"
        )
    version = payload.get("version")
    cls = registry.get(payload.get("type"))
    if cls is None or not isinstance(version, int) or isinstance(version, bool) or version < 1:
        return unknown.wrap(payload)
    if version > cls.SCHEMA_VERSION:
        try:
            return cls.from_json(payload, strict=False)
        except MessageValidationError:
            return unknown.wrap(payload)
    return cls.from_json(payload)


def decode_message_line(
    line, registry: Mapping[str, Type[TypedMessage]], unknown: Type[TypedMessage]
) -> Optional[TypedMessage]:
    """Robust file-side decode of one log line; ``None`` for non-messages.

    Torn or truncated lines (a writer died mid-append) and non-JSON debris
    return ``None``; structurally valid JSON that fails typing comes back
    wrapped via ``unknown`` -- a live reader must never crash on one bad
    line.
    """

    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError:
            return None
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(payload, dict):
        return None
    try:
        return parse_message(payload, registry, unknown)
    except MessageValidationError:
        return unknown.wrap(payload)
