"""CPU-aware defaults for worker pools and vectorized-batch widths.

The containers this reproduction runs in are often narrow (a single CPU),
where spawning one worker process per job oversubscribes the machine and
*loses* wall clock to context switching.  Every component that fans work
out -- the verification sweep's process pool, the scenario matrix runner,
the vectorized trainer -- derives its default worker count from
:func:`available_cpu_count` instead of hard-coding one.

Vectorized *environment* counts are a different axis: ``num_envs`` is a
lockstep batch width (one process, wider NumPy calls), not a concurrency
level, so it may exceed the CPU count -- but it still scales with it,
because wider batches only pay off when the BLAS underneath has cores to
feed (and amortising Python overhead saturates quickly on one core).
"""

from __future__ import annotations

import os
from typing import Callable, List, Optional, Sequence, Tuple

#: Default lockstep environment width per CPU, and its cap.  On a 1-CPU
#: container this yields 8 environments: enough to amortise the per-step
#: Python/BLAS call overhead (the dominant cost of scalar collection)
#: without inflating the on-policy buffer shape.
_ENVS_PER_CPU = 8
_MAX_DEFAULT_ENVS = 32

#: Default teacher-labelling / dataset-collection batch width.  Unlike
#: ``num_envs`` this is a pure array width with no RL semantics, so it can
#: be generous; it is still capped per CPU so narrow containers do not
#: build huge intermediate arrays they cannot process any faster.
_BATCH_PER_CPU = 64
_MAX_DEFAULT_BATCH = 256


def available_cpu_count() -> int:
    """The CPUs this process may use (``os.cpu_count()``, floored at 1)."""

    return max(1, os.cpu_count() or 1)


def default_worker_count(jobs: Optional[int] = None) -> int:
    """Default size of a *process pool*: one worker per CPU, never more.

    ``jobs`` caps the answer at the number of jobs to run (a pool larger
    than its job list only burns fork time).  This is the shared policy of
    :class:`repro.verification.sweep.VerificationSweep` and the scenario
    matrix runner; on a 1-CPU container it always returns 1, which those
    callers treat as "run inline, no pool".
    """

    workers = available_cpu_count()
    if jobs is not None:
        workers = min(workers, max(0, int(jobs)))
    return max(1, workers)


def spawn_workers(
    target: Callable,
    args_list: Sequence[Tuple],
    context: str = "fork",
    join_timeout: Optional[float] = None,
) -> List[int]:
    """Run ``target(*args)`` once per entry in plain worker processes.

    Unlike a ``multiprocessing.Pool`` these workers are *not* daemonic, so
    each may fork its own pool -- which is exactly what a matrix shard does
    when it fans its verification jobs out
    (:func:`repro.scenarios.run_sharded_matrix`).  All workers are started
    up front (the caller sizes the list; shards are coarse units, not a
    queue of small jobs) and joined in order; returns one exit code per
    worker (0 = clean, negative = killed by that signal), letting the
    caller decide whether a crashed worker is fatal or -- with work-stealing
    -- just a straggler the others covered for.
    """

    import multiprocessing

    if context not in multiprocessing.get_all_start_methods():
        context = None  # platform default
    ctx = multiprocessing.get_context(context)
    workers = [ctx.Process(target=target, args=tuple(args)) for args in args_list]
    for worker in workers:
        worker.start()
    exit_codes: List[int] = []
    for worker in workers:
        worker.join(join_timeout)
        if worker.is_alive():
            worker.terminate()
            worker.join()
        exit_codes.append(worker.exitcode if worker.exitcode is not None else -15)
    return exit_codes


def default_num_envs() -> int:
    """Default lockstep environment count for the vectorized trainer."""

    return min(_MAX_DEFAULT_ENVS, _ENVS_PER_CPU * available_cpu_count())


def default_train_batch_size() -> int:
    """Default batch width for dataset collection / teacher labelling."""

    return min(_MAX_DEFAULT_BATCH, _BATCH_PER_CPU * available_cpu_count())
