"""A tiny training logger.

Training loops (PPO, DDPG, distillation) record scalar metrics per epoch;
the logger keeps them in memory for inspection by tests and optionally echoes
progress lines, which the examples enable and the tests keep silent.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional


class TrainingLogger:
    """Collects scalar training metrics keyed by name."""

    def __init__(self, name: str = "training", verbose: bool = False, print_every: int = 10):
        self.name = name
        self.verbose = verbose
        self.print_every = max(1, int(print_every))
        self.history: Dict[str, List[float]] = defaultdict(list)
        self._epoch = 0

    def log(self, **metrics: float) -> None:
        """Record one epoch worth of scalar metrics."""

        self._epoch += 1
        for key, value in metrics.items():
            self.history[key].append(float(value))
        if self.verbose and self._epoch % self.print_every == 0:
            rendered = ", ".join(f"{key}={float(value):.4g}" for key, value in metrics.items())
            print(f"[{self.name}] epoch {self._epoch}: {rendered}")

    def last(self, key: str, default: Optional[float] = None) -> Optional[float]:
        values = self.history.get(key)
        return values[-1] if values else default

    def series(self, key: str) -> List[float]:
        return list(self.history.get(key, []))

    def epochs(self) -> int:
        return self._epoch
