"""A tiny training logger.

Training loops (PPO, DDPG, distillation) record scalar metrics per epoch;
the logger keeps them in memory for inspection by tests and optionally echoes
progress lines, which the examples enable and the tests keep silent.  An
optional ``sink`` callback additionally forwards every logged epoch to an
external consumer -- the hook the telemetry stream uses to observe training
progress live -- without changing the print/history behavior at all.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Dict, List, Optional

#: Signature of a logger sink: ``(logger_name, epoch, metrics)``.
LogSink = Callable[[str, int, Dict[str, float]], None]


class TrainingLogger:
    """Collects scalar training metrics keyed by name.

    ``sink``, when given, is invoked after every :meth:`log` with
    ``(name, epoch, metrics)`` -- the metrics already coerced to floats.
    A sink is an observer only: it cannot alter the recorded history, and
    an exception it raises propagates (a broken telemetry sink should fail
    loudly in the training loop that installed it).
    """

    def __init__(
        self,
        name: str = "training",
        verbose: bool = False,
        print_every: int = 10,
        sink: Optional[LogSink] = None,
    ):
        self.name = name
        self.verbose = verbose
        self.print_every = max(1, int(print_every))
        self.sink = sink
        self.history: Dict[str, List[float]] = defaultdict(list)
        self._epoch = 0

    def log(self, **metrics: float) -> None:
        """Record one epoch worth of scalar metrics."""

        self._epoch += 1
        recorded = {key: float(value) for key, value in metrics.items()}
        for key, value in recorded.items():
            self.history[key].append(value)
        if self.verbose and self._epoch % self.print_every == 0:
            rendered = ", ".join(f"{key}={value:.4g}" for key, value in recorded.items())
            print(f"[{self.name}] epoch {self._epoch}: {rendered}")
        if self.sink is not None:
            self.sink(self.name, self._epoch, recorded)

    def last(self, key: str, default: Optional[float] = None) -> Optional[float]:
        values = self.history.get(key)
        return values[-1] if values else default

    def series(self, key: str) -> List[float]:
        return list(self.history.get(key, []))

    def epochs(self) -> int:
        return self._epoch
