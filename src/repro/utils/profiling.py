"""Stage-level wall-clock timing shared by the pipeline and the bench CLI.

:class:`StageTimer` is the one way the repo measures named stages: the
Cocktail pipeline times its four training stages with it (the
``stage_seconds`` dict on :class:`repro.core.cocktail.CocktailResult` is a
``StageTimer`` export), the scenario matrix forwards those stages into
``StageTiming`` telemetry events, and ``repro bench`` uses the same timer
for its per-path measurements so every timing in the repo is produced by
identical code.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterator, TypeVar

__all__ = ["StageTimer"]

T = TypeVar("T")


class StageTimer:
    """Accumulates wall-clock seconds per named stage.

    Stages may run more than once (seconds accumulate), nest freely, and
    are reported in first-start order so exports read like the pipeline
    executed.
    """

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Context manager timing one stage::

            with timer.stage("mixing"):
                train_mixing()
        """

        if not name:
            raise ValueError("stage name must be non-empty")
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._seconds[name] = self._seconds.get(name, 0.0) + elapsed

    def timed(self, name: str, fn: Callable[[], T]) -> T:
        """Run ``fn`` under :meth:`stage` and return its result."""

        with self.stage(name):
            return fn()

    def seconds(self, name: str) -> float:
        """Accumulated seconds of one stage (0.0 if it never ran)."""

        return self._seconds.get(name, 0.0)

    def total(self) -> float:
        return sum(self._seconds.values())

    def as_dict(self) -> Dict[str, float]:
        """Plain ``{stage: seconds}`` copy, in first-start order."""

        return dict(self._seconds)

    def emit_to(self, telemetry, scenario: str = "") -> None:
        """Emit one ``StageTiming`` event per stage to a telemetry emitter.

        ``telemetry`` is any object with the
        :class:`repro.telemetry.TelemetryEmitter` ``emit(event_cls, **fields)``
        surface; the import is deferred so profiling stays dependency-free
        for callers that never touch telemetry.
        """

        from repro.telemetry import StageTiming

        for stage, seconds in self._seconds.items():
            telemetry.emit(StageTiming, scenario=scenario, stage=stage, seconds=seconds)
