"""Float-precision policy shared by the training and verification stacks.

The reproduction runs **training-side** numerics (rollout simulation, PPO
rollout buffers, GAE) in an opt-in reduced precision: ``float32`` halves the
memory traffic of the ``(N, T, dim)`` history tensors and the rollout
buffers, and golden-run tests document the tolerance against the float64
baseline.  **Verification-side** numerics (Bernstein fits, interval bound
propagation, reachability) are pinned to ``float64``: the soundness story
rests on bit-identical scalar/batched kernels and committed golden
enclosures, so a reduced-precision verification run is a configuration
error, not a speedup -- :func:`require_float64` turns it into an immediate
``ValueError``.
"""

from __future__ import annotations

from typing import Union

import numpy as np

__all__ = ["TRAINING_DTYPES", "resolve_training_dtype", "require_float64"]

DtypeLike = Union[str, type, np.dtype]

#: The training stack supports exactly these precisions.
TRAINING_DTYPES = ("float32", "float64")


def resolve_training_dtype(value: DtypeLike) -> np.dtype:
    """Validate and canonicalise a training-side dtype selection.

    Accepts the string names ``"float32"``/``"float64"`` (the config-file
    spelling) as well as the corresponding NumPy types, and returns the
    ``np.dtype``.  Anything else raises ``ValueError``.
    """

    if value is None:  # np.dtype(None) silently means float64; demand intent
        raise ValueError("unsupported training dtype: None")
    try:
        dtype = np.dtype(value)
    except TypeError as error:
        raise ValueError(f"unsupported training dtype: {value!r}") from error
    if dtype.name not in TRAINING_DTYPES:
        raise ValueError(
            f"unsupported training dtype {dtype.name!r}: expected one of {TRAINING_DTYPES}"
        )
    return dtype


def require_float64(value: DtypeLike, context: str) -> np.dtype:
    """Reject any non-float64 dtype on a verification path.

    ``context`` names the offending entry point in the error message, e.g.
    ``require_float64(dtype, "verify_controller")``.
    """

    dtype = np.dtype(value)
    if dtype != np.float64:
        raise ValueError(
            f"{context} is a verification path and must run in float64 for soundness; "
            f"got dtype {dtype.name!r} (float32 mode is training-only)"
        )
    return dtype
