"""Hot-path speedup measurements and the centralized performance floors.

Each measured path repeats the scalar-vs-batched comparison its full
benchmark makes (``benchmarks/test_rollout_speed.py`` and friends) at a
reduced scale, so ``repro bench`` finishes in well under a minute while
exercising exactly the kernels the floors protect.  Timings alternate the
two arms and keep the per-arm minimum over ``repeats`` rounds, which is
robust against the scheduling noise of a loaded single-core box.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

#: Minimum batched-vs-scalar speedup each hot path must keep.  These are
#: the single source of truth: the benchmark suite imports them, so a
#: ratchet here tightens the committed floors everywhere at once.
#: rollout/verification were ratcheted from the original 3.0 once the
#: fixed-block kernels and the rollout fast path landed well clear of it.
FLOORS: Dict[str, float] = {
    "rollout": 5.0,
    "training": 3.0,
    "verification": 4.0,
}

#: The measured hot paths, in report order.
BENCH_PATHS: Tuple[str, ...] = ("rollout", "training", "verification")

#: Committed baseline CSV (under :func:`results_dir`) per path, written by
#: the full benchmarks under ``REPRO_RECORD=1``.
BASELINE_CSVS: Dict[str, str] = {
    "rollout": "rollout_speed.csv",
    "training": "training_speed.csv",
    "verification": "verification_speed.csv",
}


def results_dir() -> Path:
    """The committed benchmark-results directory (``benchmarks/results``)."""

    return Path(__file__).resolve().parents[3] / "benchmarks" / "results"


@dataclass
class PathResult:
    """One hot path's measurement, compared against floor and baseline."""

    name: str
    #: Measured scalar/batched wall-clock ratio (higher is better).
    speedup: float
    #: The floor this path must keep (from :data:`FLOORS`).
    floor: float
    #: Speedup recorded in the committed baseline CSV, if present.
    baseline_speedup: Optional[float]
    #: Whether the measured speedup clears the floor.
    passed: bool
    #: Raw per-case timings backing the headline number.
    detail: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def as_dict(self) -> Dict:
        return {
            "path": self.name,
            "speedup": round(self.speedup, 3),
            "floor": self.floor,
            "baseline_speedup": self.baseline_speedup,
            "passed": self.passed,
            "beats_baseline": (
                None if self.baseline_speedup is None else self.speedup >= self.baseline_speedup
            ),
            "detail": self.detail,
        }


@dataclass
class BenchReport:
    """All measured paths of one ``repro bench`` invocation."""

    results: List[PathResult]
    #: Wall-clock seconds the whole measurement took.
    elapsed_seconds: float = 0.0

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    def result(self, name: str) -> PathResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(name)


def baseline_speedups(directory: Optional[Path] = None) -> Dict[str, Optional[float]]:
    """Headline speedup per path from the committed baseline CSVs.

    The headline row is the one each benchmark asserts its floor on: the
    *minimum* per-system rollout speedup, the ``train-data-path`` training
    row and the ``total`` verification row.  Paths whose CSV is missing
    (e.g. a fresh clone before any ``REPRO_RECORD=1`` run) map to ``None``.
    """

    directory = results_dir() if directory is None else Path(directory)
    headline: Dict[str, Optional[float]] = {}
    for path_name, csv_name in BASELINE_CSVS.items():
        csv_path = directory / csv_name
        if not csv_path.exists():
            headline[path_name] = None
            continue
        rows = [line.split(",") for line in csv_path.read_text().splitlines()[1:] if line.strip()]
        try:
            if path_name == "rollout":
                headline[path_name] = min(float(row[-1]) for row in rows)
            elif path_name == "training":
                headline[path_name] = next(
                    float(row[-1]) for row in rows if row[0] == "train-data-path"
                )
            else:
                headline[path_name] = next(float(row[-1]) for row in rows if row[0] == "total")
        except (StopIteration, ValueError, IndexError):
            headline[path_name] = None
    return headline


def _ab_seconds(
    scalar: Callable[[], None], batched: Callable[[], None], repeats: int
) -> Tuple[float, float]:
    """Interleaved A/B timing: alternate the arms, keep each arm's minimum.

    Interleaving spreads slow scheduling quanta over both arms instead of
    letting one arm eat a whole noisy stretch; the minimum estimates the
    undisturbed cost.
    """

    best_scalar = best_batched = float("inf")
    for _ in range(max(1, int(repeats))):
        start = time.perf_counter()
        scalar()
        best_scalar = min(best_scalar, time.perf_counter() - start)
        start = time.perf_counter()
        batched()
        best_batched = min(best_batched, time.perf_counter() - start)
    return best_scalar, best_batched


# ----------------------------------------------------------------------
# Per-path measurements (reduced-scale mirrors of benchmarks/test_*_speed.py)
# ----------------------------------------------------------------------

def _measure_rollout(repeats: int, batch: int = 64) -> PathResult:
    from repro.experts import NeuralController
    from repro.nn.network import MLP
    from repro.systems import make_system
    from repro.systems.simulation import rollout, rollout_batch, sample_initial_states

    detail: Dict[str, Dict[str, float]] = {}
    speedups = []
    for system_name in ("vanderpol", "cartpole"):
        system = make_system(system_name)
        controller = NeuralController(
            MLP(system.state_dim, system.control_dim, hidden_sizes=(32, 32), seed=0)
        )
        initial_states = sample_initial_states(system, batch, rng=0)

        def scalar_sweep():
            generator = np.random.default_rng(0)
            for initial_state in initial_states:
                rollout(system, controller, initial_state, rng=generator)

        def batched_sweep():
            rollout_batch(system, controller, initial_states, rng=np.random.default_rng(0))

        scalar_seconds, batched_seconds = _ab_seconds(scalar_sweep, batched_sweep, repeats)
        speedup = scalar_seconds / max(batched_seconds, 1e-12)
        speedups.append(speedup)
        detail[system_name] = {
            "scalar_seconds": scalar_seconds,
            "batched_seconds": batched_seconds,
            "speedup": round(speedup, 2),
        }
    headline = min(speedups)
    return PathResult(
        name="rollout",
        speedup=headline,
        floor=FLOORS["rollout"],
        baseline_speedup=None,
        passed=headline >= FLOORS["rollout"],
        detail=detail,
    )


def _measure_training(
    repeats: int,
    collect_steps: int = 512,
    dataset_size: int = 600,
    teacher_steps: int = 128,
) -> PathResult:
    """Scale knobs exist for the ``bench_smoke`` tests; ``repro bench``
    always runs the defaults so reports stay comparable."""

    from repro.core.config import MixingConfig
    from repro.core.distillation import collect_distillation_dataset
    from repro.core.mixing import MixingTrainer
    from repro.experts import make_default_experts
    from repro.rl.ppo import PPOTrainer
    from repro.systems import make_system
    from repro.utils.parallel import default_num_envs, default_train_batch_size
    from repro.utils.seeding import set_global_seed

    system = make_system("vanderpol")
    experts = make_default_experts(system)
    num_envs = default_num_envs()
    batch_size = default_train_batch_size()

    set_global_seed(0)
    teacher = MixingTrainer(
        system,
        experts,
        config=MixingConfig(epochs=1, steps_per_epoch=teacher_steps, num_envs=num_envs, seed=0),
        rng=0,
    ).train()

    def _collect(width: int) -> None:
        set_global_seed(0)
        trainer = MixingTrainer(
            system,
            experts,
            config=MixingConfig(epochs=1, steps_per_epoch=collect_steps, num_envs=width, seed=0),
            rng=0,
        )
        ppo = PPOTrainer(
            trainer.env,
            policy=trainer._build_warm_started_policy(),
            config=trainer.config.ppo_config(),
            rng=trainer._rng,
        )
        ppo.collect_rollouts(collect_steps)

    def _dataset(width: int) -> None:
        collect_distillation_dataset(
            system, teacher, size=dataset_size, trajectory_fraction=0.6, rng=0, batch_size=width
        )

    def scalar_stage():
        _collect(1)
        _dataset(1)

    def vector_stage():
        _collect(num_envs)
        _dataset(batch_size)

    scalar_seconds, vector_seconds = _ab_seconds(scalar_stage, vector_stage, repeats)
    speedup = scalar_seconds / max(vector_seconds, 1e-12)
    return PathResult(
        name="training",
        speedup=speedup,
        floor=FLOORS["training"],
        baseline_speedup=None,
        passed=speedup >= FLOORS["training"],
        detail={
            "train-data-path": {
                "scalar_seconds": scalar_seconds,
                "vectorized_seconds": vector_seconds,
                "speedup": round(speedup, 2),
                "num_envs": num_envs,
                "train_batch_size": batch_size,
            }
        },
    )


def _measure_verification(
    repeats: int,
    max_partitions: int = 1024,
    reach_steps: int = 8,
    invariant_grid: int = 10,
) -> PathResult:
    """Scale knobs exist for the ``bench_smoke`` tests; ``repro bench``
    always runs the defaults so reports stay comparable."""

    from repro.nn.network import MLP
    from repro.systems import make_system
    from repro.verification.sweep import SweepJob, run_sweep_job

    system = make_system("vanderpol")
    network = MLP(system.state_dim, system.control_dim, hidden_sizes=(12, 12), seed=0)
    job = SweepJob.from_network(
        "bench@vanderpol",
        "vanderpol",
        network,
        target_error=0.45,
        degree=3,
        max_partitions=max_partitions,
        reach_steps=reach_steps,
        invariant_grid=invariant_grid,
    )

    def scalar_run():
        result = run_sweep_job(job, engine="scalar")
        assert result.status == "ok", result.error

    def batched_run():
        result = run_sweep_job(job, engine="batched")
        assert result.status == "ok", result.error

    scalar_seconds, batched_seconds = _ab_seconds(scalar_run, batched_run, repeats)
    speedup = scalar_seconds / max(batched_seconds, 1e-12)
    return PathResult(
        name="verification",
        speedup=speedup,
        floor=FLOORS["verification"],
        baseline_speedup=None,
        passed=speedup >= FLOORS["verification"],
        detail={
            "bench@vanderpol": {
                "scalar_seconds": scalar_seconds,
                "batched_seconds": batched_seconds,
                "speedup": round(speedup, 2),
            }
        },
    )


_MEASUREMENTS: Dict[str, Callable[[int], PathResult]] = {
    "rollout": _measure_rollout,
    "training": _measure_training,
    "verification": _measure_verification,
}


def run_bench(
    paths: Optional[Sequence[str]] = None,
    repeats: int = 3,
    baseline_dir: Optional[Path] = None,
) -> BenchReport:
    """Measure the requested hot paths and compare them to the baselines.

    ``paths`` defaults to all of :data:`BENCH_PATHS`; unknown names raise
    ``ValueError`` immediately rather than half-running.
    """

    selected = list(BENCH_PATHS) if paths is None else list(paths)
    unknown = [name for name in selected if name not in _MEASUREMENTS]
    if unknown:
        raise ValueError(f"unknown bench paths {unknown}: expected a subset of {BENCH_PATHS}")
    baselines = baseline_speedups(baseline_dir)
    start = time.perf_counter()
    results = []
    for name in selected:
        result = _MEASUREMENTS[name](repeats)
        result.baseline_speedup = baselines.get(name)
        results.append(result)
    return BenchReport(results=results, elapsed_seconds=time.perf_counter() - start)
