"""Versioned machine-readable bench reports (``BENCH_<date>.json``).

The JSON schema is versioned the same way the telemetry event log is: a
top-level ``"version"`` integer that bumps on any incompatible change, so
CI tooling that parses a report can refuse newer schemas loudly instead of
misreading them.
"""

from __future__ import annotations

import json
from datetime import date as _date
from pathlib import Path
from typing import Dict, Optional, Union

from repro.perf.bench import BenchReport, FLOORS

#: Schema version of the emitted JSON; bump on incompatible changes.
REPORT_VERSION = 1


def bench_payload(report: BenchReport, date: Optional[str] = None) -> Dict:
    """The JSON-serialisable document for one bench run."""

    return {
        "version": REPORT_VERSION,
        "date": date if date is not None else _date.today().isoformat(),
        "floors": dict(FLOORS),
        "passed": report.passed,
        "elapsed_seconds": round(report.elapsed_seconds, 3),
        "paths": [result.as_dict() for result in report.results],
    }


def write_bench_report(
    report: BenchReport,
    directory: Union[str, Path] = ".",
    date: Optional[str] = None,
) -> Path:
    """Write ``BENCH_<date>.json`` into ``directory`` and return its path.

    ``date`` defaults to today (ISO format); passing it explicitly makes
    the filename reproducible in tests.
    """

    payload = bench_payload(report, date=date)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{payload['date']}.json"
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path
