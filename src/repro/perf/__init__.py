"""Performance-regression harness: floors, measurements and reports.

One place owns the repo's performance contract:

* :data:`FLOORS` -- the minimum batched-vs-scalar speedup each hot path
  must keep.  The benchmark suite (``benchmarks/test_*_speed.py``) imports
  its pass/fail thresholds from here, so ratcheting a floor is a one-line
  change that the benchmarks and ``repro bench`` both see.
* :func:`run_bench` -- re-measures the hot paths at a reduced scale with
  the same scalar-vs-batched protocol as the benchmarks.
* :func:`write_bench_report` -- emits the versioned, machine-readable
  ``BENCH_<date>.json`` consumed by CI and tracked across PRs.
"""

from repro.perf.bench import (
    BASELINE_CSVS,
    BENCH_PATHS,
    FLOORS,
    BenchReport,
    PathResult,
    baseline_speedups,
    results_dir,
    run_bench,
)
from repro.perf.report import REPORT_VERSION, bench_payload, write_bench_report

__all__ = [
    "BASELINE_CSVS",
    "BENCH_PATHS",
    "FLOORS",
    "BenchReport",
    "PathResult",
    "REPORT_VERSION",
    "baseline_speedups",
    "bench_payload",
    "results_dir",
    "run_bench",
    "write_bench_report",
]
