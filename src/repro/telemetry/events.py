"""Versioned, typed run-telemetry events.

Every message the telemetry stream carries is one validated dataclass --
the ``named_types`` idiom: the class *is* the schema.  Each event declares
a wire name (``TYPE``), a ``SCHEMA_VERSION``, and typed fields that are
checked on construction, so a malformed event fails loudly at the emitter
instead of silently corrupting a log that a live ``repro runs watch`` or a
cross-run ``repro runs stats`` aggregation reads later.

The generic machinery (field validation, strict/tolerant ``from_json``,
registry routing) lives in :mod:`repro.utils.messages` and is shared with
the job-service API (:mod:`repro.jobs.messages`); this module owns the
telemetry *family*: the event classes, their registry, and the
:class:`UnknownEvent` wrapper.

Wire format
-----------
One JSON object per event::

    {"type": "cell-finished", "version": 1, "ts": ..., "shard": "main", ...}

``to_json``/``from_json`` round-trip exactly (tuples survive the JSON list
round-trip), and :func:`parse_event` is *forward tolerant*: a payload whose
``version`` is newer than this reader's class is decoded best-effort from
the fields it knows (unknown extra fields are ignored), and a payload whose
type is unknown altogether comes back as an :class:`UnknownEvent` instead
of an exception -- an old ``watch`` client keeps working against a newer
fleet.  Within the *same* version the contract is strict: missing or
mistyped fields raise :class:`EventValidationError`.

Versioning policy (see ``docs/telemetry.md``): adding an *optional* field
keeps the version; adding a required field, renaming or retyping anything
bumps ``SCHEMA_VERSION``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Dict, Mapping, Optional, Tuple, Type

from repro.utils.messages import (
    MessageValidationError,
    TypedMessage,
    decode_message_line,
    parse_message,
    register_message,
)

__all__ = [
    "EventValidationError",
    "TelemetryEvent",
    "UnknownEvent",
    "RunStarted",
    "CellStarted",
    "CellFinished",
    "CellCached",
    "CellStolen",
    "ShardHeartbeat",
    "SweepJobFinished",
    "StageTiming",
    "RunFinished",
    "EVENT_REGISTRY",
    "register_event",
    "parse_event",
    "decode_line",
]

#: The cell kinds the matrix runner produces (one per pipeline stage).
CELL_KINDS = ("train", "evaluate", "verify")

#: Historical name for the shared validation error -- the *same* class, so
#: ``except EventValidationError`` and ``except MessageValidationError``
#: are interchangeable across the telemetry and job-service families.
EventValidationError = MessageValidationError

#: Wire ``type`` name -> event class, populated by :func:`register_event`.
EVENT_REGISTRY: Dict[str, Type["TelemetryEvent"]] = {}

#: Class decorator adding events to :data:`EVENT_REGISTRY` by ``TYPE``.
register_event = register_message(EVENT_REGISTRY)


@dataclass(frozen=True)
class TelemetryEvent(TypedMessage):
    """Base event: a timestamp plus the emitting source ("shard") label.

    ``ts`` is unix seconds stamped by the emitter; ``shard`` names the
    event-log file the line lives in (``"main"``, ``"shard-2-of-4"``, ...),
    which is how the reader attributes liveness per worker.
    """

    ts: float
    shard: str


def _require_counts(event: TelemetryEvent, *names: str) -> None:
    for name in names:
        if getattr(event, name) < 0:
            raise EventValidationError(f"{type(event).__name__}.{name} must be >= 0")


def _require_cell_kind(event: TelemetryEvent) -> None:
    if event.cell not in CELL_KINDS:
        raise EventValidationError(
            f"{type(event).__name__}.cell must be one of {CELL_KINDS}, got {event.cell!r}"
        )


@register_event
@dataclass(frozen=True)
class RunStarted(TelemetryEvent):
    """A matrix runner (one shard or the sole process) began executing."""

    TYPE: ClassVar[str] = "run-started"
    scenarios: Tuple[str, ...] = ()
    cells_total: int = 0
    cells_owned: int = 0
    pid: int = 0

    def _validate(self) -> None:
        _require_counts(self, "cells_total", "cells_owned", "pid")
        if self.cells_owned > self.cells_total:
            raise EventValidationError("RunStarted.cells_owned cannot exceed cells_total")


@register_event
@dataclass(frozen=True)
class CellStarted(TelemetryEvent):
    """One matrix cell began *computing* (cache probes emit no start)."""

    TYPE: ClassVar[str] = "cell-started"
    scenario: str = ""
    controller: str = ""
    cell: str = "evaluate"
    perturbation: Optional[str] = None

    def _validate(self) -> None:
        _require_cell_kind(self)


@register_event
@dataclass(frozen=True)
class CellFinished(TelemetryEvent):
    """One matrix cell finished computing; wall-clock timings live here.

    ``seconds`` is deliberately *only* in the event log -- never in run-store
    rows -- which is what keeps merged CSVs byte-identical across reruns.
    """

    TYPE: ClassVar[str] = "cell-finished"
    scenario: str = ""
    controller: str = ""
    cell: str = "evaluate"
    perturbation: Optional[str] = None
    seconds: float = 0.0
    status: str = "ok"
    safe_rate: Optional[float] = None

    def _validate(self) -> None:
        _require_cell_kind(self)
        if self.seconds < 0:
            raise EventValidationError("CellFinished.seconds must be >= 0")
        if self.safe_rate is not None and not 0.0 <= self.safe_rate <= 1.0:
            raise EventValidationError("CellFinished.safe_rate must be within [0, 1]")


@register_event
@dataclass(frozen=True)
class CellCached(TelemetryEvent):
    """One matrix cell was answered from the run store instead of computed."""

    TYPE: ClassVar[str] = "cell-cached"
    scenario: str = ""
    controller: str = ""
    cell: str = "evaluate"
    perturbation: Optional[str] = None

    def _validate(self) -> None:
        _require_cell_kind(self)


@register_event
@dataclass(frozen=True)
class CellStolen(TelemetryEvent):
    """A shard computed a cell owned by another shard (work-stealing).

    ``stale`` marks a stale-lease takeover: the owning worker's claim had
    stopped heartbeating (it died) and this shard reaped it.
    """

    TYPE: ClassVar[str] = "cell-stolen"
    scenario: str = ""
    controller: str = ""
    cell: str = "evaluate"
    perturbation: Optional[str] = None
    stale: bool = False

    def _validate(self) -> None:
        _require_cell_kind(self)


@register_event
@dataclass(frozen=True)
class ShardHeartbeat(TelemetryEvent):
    """Periodic liveness beacon with the shard's running accounting."""

    TYPE: ClassVar[str] = "shard-heartbeat"
    cells_done: int = 0
    cells_computed: int = 0
    cells_cached: int = 0
    cells_stolen: int = 0
    cells_skipped: int = 0

    def _validate(self) -> None:
        _require_counts(
            self, "cells_done", "cells_computed", "cells_cached", "cells_stolen", "cells_skipped"
        )


@register_event
@dataclass(frozen=True)
class SweepJobFinished(TelemetryEvent):
    """One :class:`~repro.verification.sweep.VerificationSweep` job completed."""

    TYPE: ClassVar[str] = "sweep-job-finished"
    job: str = ""
    system: str = ""
    status: str = "ok"
    seconds: float = 0.0
    cached: bool = False
    verified: bool = False

    def _validate(self) -> None:
        if self.seconds < 0:
            raise EventValidationError("SweepJobFinished.seconds must be >= 0")


@register_event
@dataclass(frozen=True)
class StageTiming(TelemetryEvent):
    """Wall-clock seconds of one training-pipeline stage (mixing, ...)."""

    TYPE: ClassVar[str] = "stage-timing"
    scenario: str = ""
    stage: str = ""
    seconds: float = 0.0

    def _validate(self) -> None:
        if not self.stage:
            raise EventValidationError("StageTiming.stage must be non-empty")
        if self.seconds < 0:
            raise EventValidationError("StageTiming.seconds must be >= 0")


@register_event
@dataclass(frozen=True)
class RunFinished(TelemetryEvent):
    """A matrix runner finished; final accounting mirrors its report."""

    TYPE: ClassVar[str] = "run-finished"
    status: str = "ok"
    cells_computed: int = 0
    cells_cached: int = 0
    cells_stolen: int = 0
    cells_skipped: int = 0
    rows: int = 0
    seconds: float = 0.0

    def _validate(self) -> None:
        _require_counts(self, "cells_computed", "cells_cached", "cells_stolen", "cells_skipped", "rows")
        if self.seconds < 0:
            raise EventValidationError("RunFinished.seconds must be >= 0")


@dataclass(frozen=True)
class UnknownEvent(TelemetryEvent):
    """A payload this reader cannot type (foreign type or future schema).

    Deliberately *not* registered: it preserves the raw payload plus the
    best-effort ``ts``/``shard`` so multiplexed time-ordering still works,
    and aggregation simply skips it.
    """

    TYPE: ClassVar[str] = "unknown"
    type_name: str = ""
    version: int = 0
    payload: Dict = field(default_factory=dict)

    @classmethod
    def wrap(cls, payload: Mapping) -> "UnknownEvent":
        ts = payload.get("ts")
        shard = payload.get("shard")
        version = payload.get("version")
        return cls(
            ts=float(ts) if isinstance(ts, (int, float)) and not isinstance(ts, bool) else 0.0,
            shard=shard if isinstance(shard, str) else "",
            type_name=str(payload.get("type", "")),
            version=version if isinstance(version, int) and not isinstance(version, bool) else 0,
            payload=dict(payload),
        )


def parse_event(payload: Mapping) -> TelemetryEvent:
    """Decode one wire payload into its typed event.

    Routing is by the payload's ``type``/``version``: a registered type at
    (or below) this reader's ``SCHEMA_VERSION`` decodes strictly, a *newer*
    version decodes tolerantly from the known fields, and anything else --
    unknown type, unreadable version, a newer payload missing even the
    known required fields -- wraps as :class:`UnknownEvent`.  Only a
    same-version malformed payload raises :class:`EventValidationError`.
    """

    return parse_message(payload, EVENT_REGISTRY, UnknownEvent)


def decode_line(line) -> Optional[TelemetryEvent]:
    """Robust file-side decode of one log line; ``None`` for non-events.

    Torn or truncated lines (a worker died mid-append) and non-JSON debris
    return ``None``; structurally valid JSON that fails typing comes back
    as :class:`UnknownEvent` -- a live tailer must never crash on one bad
    line.
    """

    return decode_message_line(line, EVENT_REGISTRY, UnknownEvent)
