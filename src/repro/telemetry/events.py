"""Versioned, typed run-telemetry events.

Every message the telemetry stream carries is one validated dataclass --
the ``named_types`` idiom: the class *is* the schema.  Each event declares
a wire name (``TYPE``), a ``SCHEMA_VERSION``, and typed fields that are
checked on construction, so a malformed event fails loudly at the emitter
instead of silently corrupting a log that a live ``repro runs watch`` or a
cross-run ``repro runs stats`` aggregation reads later.

Wire format
-----------
One JSON object per event::

    {"type": "cell-finished", "version": 1, "ts": ..., "shard": "main", ...}

``to_json``/``from_json`` round-trip exactly (tuples survive the JSON list
round-trip), and :func:`parse_event` is *forward tolerant*: a payload whose
``version`` is newer than this reader's class is decoded best-effort from
the fields it knows (unknown extra fields are ignored), and a payload whose
type is unknown altogether comes back as an :class:`UnknownEvent` instead
of an exception -- an old ``watch`` client keeps working against a newer
fleet.  Within the *same* version the contract is strict: missing or
mistyped fields raise :class:`EventValidationError`.

Versioning policy (see ``docs/telemetry.md``): adding an *optional* field
keeps the version; adding a required field, renaming or retyping anything
bumps ``SCHEMA_VERSION``.
"""

from __future__ import annotations

import json
import typing
from dataclasses import MISSING, dataclass, field, fields
from typing import Any, ClassVar, Dict, Mapping, Optional, Tuple, Type

__all__ = [
    "EventValidationError",
    "TelemetryEvent",
    "UnknownEvent",
    "RunStarted",
    "CellStarted",
    "CellFinished",
    "CellCached",
    "CellStolen",
    "ShardHeartbeat",
    "SweepJobFinished",
    "StageTiming",
    "RunFinished",
    "EVENT_REGISTRY",
    "register_event",
    "parse_event",
    "decode_line",
]

#: The cell kinds the matrix runner produces (one per pipeline stage).
CELL_KINDS = ("train", "evaluate", "verify")


class EventValidationError(ValueError):
    """A telemetry event payload failed its class's field validation."""


#: Wire ``type`` name -> event class, populated by :func:`register_event`.
EVENT_REGISTRY: Dict[str, Type["TelemetryEvent"]] = {}


def register_event(cls: Type["TelemetryEvent"]) -> Type["TelemetryEvent"]:
    """Class decorator adding ``cls`` to :data:`EVENT_REGISTRY` by ``TYPE``."""

    if not cls.TYPE:
        raise ValueError(f"{cls.__name__} declares no TYPE wire name")
    if cls.TYPE in EVENT_REGISTRY:
        raise ValueError(f"duplicate event type {cls.TYPE!r}")
    EVENT_REGISTRY[cls.TYPE] = cls
    return cls


_HINT_CACHE: Dict[type, Dict[str, Any]] = {}


def _type_hints(cls: type) -> Dict[str, Any]:
    if cls not in _HINT_CACHE:
        _HINT_CACHE[cls] = typing.get_type_hints(cls)
    return _HINT_CACHE[cls]


def _checked(cls_name: str, name: str, value, annotation):
    """Validate ``value`` against ``annotation``; ints promote to floats."""

    origin = typing.get_origin(annotation)
    if origin is typing.Union:
        arms = typing.get_args(annotation)
        if value is None and type(None) in arms:
            return None
        inner = [arm for arm in arms if arm is not type(None)]
        return _checked(cls_name, name, value, inner[0])
    if annotation is float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise EventValidationError(f"{cls_name}.{name} must be a number, got {value!r}")
        return float(value)
    if annotation is int:
        if isinstance(value, bool) or not isinstance(value, int):
            raise EventValidationError(f"{cls_name}.{name} must be an integer, got {value!r}")
        return value
    if annotation is bool:
        if not isinstance(value, bool):
            raise EventValidationError(f"{cls_name}.{name} must be a boolean, got {value!r}")
        return value
    if annotation is str:
        if not isinstance(value, str):
            raise EventValidationError(f"{cls_name}.{name} must be a string, got {value!r}")
        return value
    if origin in (tuple, Tuple):
        if isinstance(value, str) or not isinstance(value, (list, tuple)):
            raise EventValidationError(f"{cls_name}.{name} must be a sequence, got {value!r}")
        item_type = typing.get_args(annotation)[0]
        return tuple(_checked(cls_name, name, item, item_type) for item in value)
    return value  # Dict / Any fields (UnknownEvent payload) pass through


@dataclass(frozen=True)
class TelemetryEvent:
    """Base event: a timestamp plus the emitting source ("shard") label.

    ``ts`` is unix seconds stamped by the emitter; ``shard`` names the
    event-log file the line lives in (``"main"``, ``"shard-2-of-4"``, ...),
    which is how the reader attributes liveness per worker.
    """

    ts: float
    shard: str

    TYPE: ClassVar[str] = ""
    SCHEMA_VERSION: ClassVar[int] = 1

    def __post_init__(self) -> None:
        hints = _type_hints(type(self))
        for spec in fields(self):
            value = _checked(type(self).__name__, spec.name, getattr(self, spec.name), hints[spec.name])
            object.__setattr__(self, spec.name, value)
        self._validate()

    def _validate(self) -> None:
        """Per-class semantic checks (field types are already enforced)."""

    def to_json(self) -> Dict:
        """The wire payload: ``type`` and ``version`` first, fields in order."""

        payload: Dict = {"type": self.TYPE, "version": self.SCHEMA_VERSION}
        for spec in fields(self):
            value = getattr(self, spec.name)
            payload[spec.name] = list(value) if isinstance(value, tuple) else value
        return payload

    def to_line(self) -> str:
        """One compact JSON line (no newline); the event-log unit of append."""

        return json.dumps(self.to_json(), separators=(",", ":"))

    @classmethod
    def from_json(cls, payload: Mapping, strict: bool = True) -> "TelemetryEvent":
        """Rebuild an event from its wire payload.

        ``strict`` (same-version reads) rejects unexpected keys; the
        tolerant mode (newer-version reads) ignores them and falls back to
        field defaults, so old readers survive additive schema growth.
        """

        known = {spec.name for spec in fields(cls)}
        if strict:
            extras = set(payload) - known - {"type", "version"}
            if extras:
                raise EventValidationError(
                    f"{cls.TYPE} v{cls.SCHEMA_VERSION}: unexpected field(s) {sorted(extras)}"
                )
        kwargs = {}
        for spec in fields(cls):
            if spec.name in payload:
                kwargs[spec.name] = payload[spec.name]
            elif spec.default is MISSING and spec.default_factory is MISSING:
                raise EventValidationError(f"{cls.TYPE}: missing required field {spec.name!r}")
        return cls(**kwargs)


def _require_counts(event: TelemetryEvent, *names: str) -> None:
    for name in names:
        if getattr(event, name) < 0:
            raise EventValidationError(f"{type(event).__name__}.{name} must be >= 0")


def _require_cell_kind(event: TelemetryEvent) -> None:
    if event.cell not in CELL_KINDS:
        raise EventValidationError(
            f"{type(event).__name__}.cell must be one of {CELL_KINDS}, got {event.cell!r}"
        )


@register_event
@dataclass(frozen=True)
class RunStarted(TelemetryEvent):
    """A matrix runner (one shard or the sole process) began executing."""

    TYPE: ClassVar[str] = "run-started"
    scenarios: Tuple[str, ...] = ()
    cells_total: int = 0
    cells_owned: int = 0
    pid: int = 0

    def _validate(self) -> None:
        _require_counts(self, "cells_total", "cells_owned", "pid")
        if self.cells_owned > self.cells_total:
            raise EventValidationError("RunStarted.cells_owned cannot exceed cells_total")


@register_event
@dataclass(frozen=True)
class CellStarted(TelemetryEvent):
    """One matrix cell began *computing* (cache probes emit no start)."""

    TYPE: ClassVar[str] = "cell-started"
    scenario: str = ""
    controller: str = ""
    cell: str = "evaluate"
    perturbation: Optional[str] = None

    def _validate(self) -> None:
        _require_cell_kind(self)


@register_event
@dataclass(frozen=True)
class CellFinished(TelemetryEvent):
    """One matrix cell finished computing; wall-clock timings live here.

    ``seconds`` is deliberately *only* in the event log -- never in run-store
    rows -- which is what keeps merged CSVs byte-identical across reruns.
    """

    TYPE: ClassVar[str] = "cell-finished"
    scenario: str = ""
    controller: str = ""
    cell: str = "evaluate"
    perturbation: Optional[str] = None
    seconds: float = 0.0
    status: str = "ok"
    safe_rate: Optional[float] = None

    def _validate(self) -> None:
        _require_cell_kind(self)
        if self.seconds < 0:
            raise EventValidationError("CellFinished.seconds must be >= 0")
        if self.safe_rate is not None and not 0.0 <= self.safe_rate <= 1.0:
            raise EventValidationError("CellFinished.safe_rate must be within [0, 1]")


@register_event
@dataclass(frozen=True)
class CellCached(TelemetryEvent):
    """One matrix cell was answered from the run store instead of computed."""

    TYPE: ClassVar[str] = "cell-cached"
    scenario: str = ""
    controller: str = ""
    cell: str = "evaluate"
    perturbation: Optional[str] = None

    def _validate(self) -> None:
        _require_cell_kind(self)


@register_event
@dataclass(frozen=True)
class CellStolen(TelemetryEvent):
    """A shard computed a cell owned by another shard (work-stealing).

    ``stale`` marks a stale-lease takeover: the owning worker's claim had
    stopped heartbeating (it died) and this shard reaped it.
    """

    TYPE: ClassVar[str] = "cell-stolen"
    scenario: str = ""
    controller: str = ""
    cell: str = "evaluate"
    perturbation: Optional[str] = None
    stale: bool = False

    def _validate(self) -> None:
        _require_cell_kind(self)


@register_event
@dataclass(frozen=True)
class ShardHeartbeat(TelemetryEvent):
    """Periodic liveness beacon with the shard's running accounting."""

    TYPE: ClassVar[str] = "shard-heartbeat"
    cells_done: int = 0
    cells_computed: int = 0
    cells_cached: int = 0
    cells_stolen: int = 0
    cells_skipped: int = 0

    def _validate(self) -> None:
        _require_counts(
            self, "cells_done", "cells_computed", "cells_cached", "cells_stolen", "cells_skipped"
        )


@register_event
@dataclass(frozen=True)
class SweepJobFinished(TelemetryEvent):
    """One :class:`~repro.verification.sweep.VerificationSweep` job completed."""

    TYPE: ClassVar[str] = "sweep-job-finished"
    job: str = ""
    system: str = ""
    status: str = "ok"
    seconds: float = 0.0
    cached: bool = False
    verified: bool = False

    def _validate(self) -> None:
        if self.seconds < 0:
            raise EventValidationError("SweepJobFinished.seconds must be >= 0")


@register_event
@dataclass(frozen=True)
class StageTiming(TelemetryEvent):
    """Wall-clock seconds of one training-pipeline stage (mixing, ...)."""

    TYPE: ClassVar[str] = "stage-timing"
    scenario: str = ""
    stage: str = ""
    seconds: float = 0.0

    def _validate(self) -> None:
        if not self.stage:
            raise EventValidationError("StageTiming.stage must be non-empty")
        if self.seconds < 0:
            raise EventValidationError("StageTiming.seconds must be >= 0")


@register_event
@dataclass(frozen=True)
class RunFinished(TelemetryEvent):
    """A matrix runner finished; final accounting mirrors its report."""

    TYPE: ClassVar[str] = "run-finished"
    status: str = "ok"
    cells_computed: int = 0
    cells_cached: int = 0
    cells_stolen: int = 0
    cells_skipped: int = 0
    rows: int = 0
    seconds: float = 0.0

    def _validate(self) -> None:
        _require_counts(self, "cells_computed", "cells_cached", "cells_stolen", "cells_skipped", "rows")
        if self.seconds < 0:
            raise EventValidationError("RunFinished.seconds must be >= 0")


@dataclass(frozen=True)
class UnknownEvent(TelemetryEvent):
    """A payload this reader cannot type (foreign type or future schema).

    Deliberately *not* registered: it preserves the raw payload plus the
    best-effort ``ts``/``shard`` so multiplexed time-ordering still works,
    and aggregation simply skips it.
    """

    TYPE: ClassVar[str] = "unknown"
    type_name: str = ""
    version: int = 0
    payload: Dict = field(default_factory=dict)

    @classmethod
    def wrap(cls, payload: Mapping) -> "UnknownEvent":
        ts = payload.get("ts")
        shard = payload.get("shard")
        version = payload.get("version")
        return cls(
            ts=float(ts) if isinstance(ts, (int, float)) and not isinstance(ts, bool) else 0.0,
            shard=shard if isinstance(shard, str) else "",
            type_name=str(payload.get("type", "")),
            version=version if isinstance(version, int) and not isinstance(version, bool) else 0,
            payload=dict(payload),
        )


def parse_event(payload: Mapping) -> TelemetryEvent:
    """Decode one wire payload into its typed event.

    Routing is by the payload's ``type``/``version``: a registered type at
    (or below) this reader's ``SCHEMA_VERSION`` decodes strictly, a *newer*
    version decodes tolerantly from the known fields, and anything else --
    unknown type, unreadable version, a newer payload missing even the
    known required fields -- wraps as :class:`UnknownEvent`.  Only a
    same-version malformed payload raises :class:`EventValidationError`.
    """

    if not isinstance(payload, Mapping):
        raise EventValidationError(f"event payload must be an object, got {type(payload).__name__}")
    version = payload.get("version")
    cls = EVENT_REGISTRY.get(payload.get("type"))
    if cls is None or not isinstance(version, int) or isinstance(version, bool) or version < 1:
        return UnknownEvent.wrap(payload)
    if version > cls.SCHEMA_VERSION:
        try:
            return cls.from_json(payload, strict=False)
        except EventValidationError:
            return UnknownEvent.wrap(payload)
    return cls.from_json(payload)


def decode_line(line) -> Optional[TelemetryEvent]:
    """Robust file-side decode of one log line; ``None`` for non-events.

    Torn or truncated lines (a worker died mid-append) and non-JSON debris
    return ``None``; structurally valid JSON that fails typing comes back
    as :class:`UnknownEvent` -- a live tailer must never crash on one bad
    line.
    """

    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError:
            return None
    line = line.strip()
    if not line:
        return None
    try:
        payload = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(payload, dict):
        return None
    try:
        return parse_event(payload)
    except EventValidationError:
        return UnknownEvent.wrap(payload)
