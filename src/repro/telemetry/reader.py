"""Multiplexing tailer over a run directory's shard event logs.

Each worker process appends to its own ``events/<source>.jsonl``; the
reader's job is the other half of the contract: discover every log file
(including files that appear mid-run, e.g. a late-joining shard), read only
what is new since the last poll, skip a torn final line until its writer
completes it, and hand back one time-ordered stream -- events sorted by
``ts`` with a stable (file, sequence) tie-break so replays are
deterministic even when shards share a clock tick.

:class:`EventTailer` is the incremental interface ``repro runs watch``
polls; :func:`read_events` is the one-shot whole-history read that
aggregation (``repro runs stats``) uses.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Union

from repro.telemetry.emitter import events_dir
from repro.telemetry.events import TelemetryEvent, decode_line

__all__ = ["EventTailer", "read_events"]


class EventTailer:
    """Incremental, multiplexed reads over ``<run_dir>/events/*.jsonl``.

    Per-file byte offsets persist across :meth:`poll` calls, so each call
    returns exactly the events appended since the previous one (first call:
    the whole history).  A trailing line without its newline is *not*
    consumed -- the offset stays before it, and the next poll retries once
    the writer (or its crash) resolves it.
    """

    def __init__(self, run_dir: Union[str, Path]):
        self.root = events_dir(run_dir)
        self._offsets: dict = {}
        self._sequence: dict = {}

    def poll(self) -> List[TelemetryEvent]:
        """All events appended since the last poll, time-ordered."""

        if not self.root.is_dir():
            return []
        batch = []
        for path in sorted(self.root.glob("*.jsonl")):
            name = path.name
            offset = self._offsets.get(name, 0)
            try:
                with path.open("rb") as handle:
                    handle.seek(offset)
                    data = handle.read()
            except OSError:
                continue
            end = data.rfind(b"\n")
            if end < 0:
                continue  # nothing complete yet (or a torn final line)
            self._offsets[name] = offset + end + 1
            for line in data[:end].split(b"\n"):
                sequence = self._sequence[name] = self._sequence.get(name, 0) + 1
                event = decode_line(line)
                if event is not None:
                    batch.append((event.ts, name, sequence, event))
        batch.sort(key=lambda item: item[:3])
        return [item[3] for item in batch]


def read_events(run_dir: Union[str, Path]) -> List[TelemetryEvent]:
    """One-shot time-ordered read of a run directory's full event history."""

    return EventTailer(run_dir).poll()
