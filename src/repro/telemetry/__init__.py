"""Typed run telemetry: versioned event log, live tailer, fleet stats.

The observability layer over the scenario-matrix / run-store machinery:

* :mod:`repro.telemetry.events` -- versioned, typed, self-validating event
  records (one class per message; strict round-trip, forward-tolerant
  reads);
* :mod:`repro.telemetry.emitter` -- crash-safe append-only JSONL logs
  under ``<run_dir>/events/<source>.jsonl``, one file per process;
* :mod:`repro.telemetry.reader` -- a tailer that multiplexes and
  time-orders events across shard files for live follow;
* :mod:`repro.telemetry.aggregate` -- cross-run fleet statistics (exact
  computed/cached accounting, cache hit rate, cost per cell, verified
  fractions, straggler and stale-shard detection) plus the ``repro runs
  watch`` rendering.

Wall-clock timings live *only* in this event stream; run-store rows stay
timing-free and deterministic, which is what keeps merged matrix CSVs
byte-identical whether or not telemetry is enabled.  These schemas are
also the wire format the future ``repro serve`` daemon will speak (see
``docs/telemetry.md``).
"""

from repro.telemetry.events import (
    EVENT_REGISTRY,
    CellCached,
    CellFinished,
    CellStarted,
    CellStolen,
    EventValidationError,
    RunFinished,
    RunStarted,
    ShardHeartbeat,
    StageTiming,
    SweepJobFinished,
    TelemetryEvent,
    UnknownEvent,
    decode_line,
    parse_event,
)
from repro.telemetry.emitter import (
    EVENTS_DIRNAME,
    NullTelemetryEmitter,
    TelemetryEmitter,
    events_dir,
)
from repro.telemetry.reader import EventTailer, read_events
from repro.telemetry.aggregate import (
    FleetState,
    ShardState,
    accounting,
    find_stragglers,
    fleet_stats,
    fold_events,
    render_watch,
    stale_shards,
    watch_snapshot,
)

__all__ = [
    "EVENT_REGISTRY",
    "EVENTS_DIRNAME",
    "CellCached",
    "CellFinished",
    "CellStarted",
    "CellStolen",
    "EventTailer",
    "EventValidationError",
    "FleetState",
    "NullTelemetryEmitter",
    "RunFinished",
    "RunStarted",
    "ShardHeartbeat",
    "ShardState",
    "StageTiming",
    "SweepJobFinished",
    "TelemetryEmitter",
    "TelemetryEvent",
    "UnknownEvent",
    "accounting",
    "decode_line",
    "events_dir",
    "find_stragglers",
    "fleet_stats",
    "fold_events",
    "parse_event",
    "read_events",
    "render_watch",
    "stale_shards",
    "watch_snapshot",
]
