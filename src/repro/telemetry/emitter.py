"""Crash-safe append-only JSONL event logs.

One :class:`TelemetryEmitter` owns one file, ``<run_dir>/events/<source>.jsonl``
-- one file per emitting process, so concurrent shards never contend on a
lock, and the reader multiplexes.  Every event is a single complete line
written with one ``os.write`` to an ``O_APPEND`` descriptor, which POSIX
guarantees lands atomically: a fleet of workers (or threads inside one
worker -- the heartbeat thread emits concurrently) can only ever interleave
whole lines, never tear one.  A worker killed mid-write leaves at most one
truncated final line, which the reader skips; everything before it is
intact -- the same at-most-one-partial-artefact contract the run store's
atomic publish gives.

Telemetry must never take a fleet down: once the log file cannot be
written (disk full, directory removed), the emitter goes quiet instead of
raising, and ``broken`` reports it.

Timestamps come from an injectable ``clock`` so the golden-log tests can
pin the wire format byte for byte.
"""

from __future__ import annotations

import contextlib
import os
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Optional, Type, Union

from repro.telemetry.events import ShardHeartbeat, TelemetryEvent

__all__ = ["EVENTS_DIRNAME", "events_dir", "TelemetryEmitter", "NullTelemetryEmitter"]

#: Subdirectory of a run directory holding the per-process event logs.
EVENTS_DIRNAME = "events"


def events_dir(run_dir: Union[str, Path]) -> Path:
    """Where a run directory keeps its event logs (may not exist yet)."""

    return Path(run_dir) / EVENTS_DIRNAME


class TelemetryEmitter:
    """Appends typed events to ``<run_dir>/events/<source>.jsonl``.

    ``source`` labels the emitting process (``"main"``, ``"shard-1-of-4"``)
    and becomes both the file name and every event's ``shard`` field; the
    emitter stamps ``ts`` from ``clock`` at emit time.  Use as a context
    manager, or call :meth:`close` when the run ends.
    """

    def __init__(
        self,
        run_dir: Union[str, Path],
        source: str = "main",
        clock: Callable[[], float] = time.time,
    ):
        if not source or "/" in source or source.startswith("."):
            raise ValueError(f"bad telemetry source name {source!r}")
        self.root = events_dir(run_dir)
        self.source = str(source)
        self.clock = clock
        self.path = self.root / f"{self.source}.jsonl"
        self.emitted = 0
        self.broken = False
        self._fd: Optional[int] = None
        self._lock = threading.Lock()
        self._hb_stop: Optional[threading.Event] = None
        self._hb_thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------
    def __enter__(self) -> "TelemetryEmitter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Stop heartbeats and release the file descriptor (idempotent)."""

        self.stop_heartbeats()
        with self._lock:
            if self._fd is not None:
                os.close(self._fd)
                self._fd = None

    # -- emission ------------------------------------------------------
    def emit(self, event_type: Type[TelemetryEvent], **fields) -> Optional[TelemetryEvent]:
        """Construct, validate and append one event; returns it (or None).

        Field validation errors propagate (they are emitter-side bugs);
        I/O errors silence the emitter for the rest of the run instead --
        observability must never abort the observed work.
        """

        event = event_type(ts=float(self.clock()), shard=self.source, **fields)
        if self.broken:
            return None
        line = (event.to_line() + "\n").encode("utf-8")
        try:
            with self._lock:
                if self._fd is None:
                    self.root.mkdir(parents=True, exist_ok=True)
                    self._fd = os.open(self.path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
                os.write(self._fd, line)
            self.emitted += 1
        except OSError:
            self.broken = True
            return None
        return event

    # -- heartbeats ----------------------------------------------------
    def start_heartbeats(
        self, snapshot: Callable[[], Dict[str, int]], interval: float = 5.0
    ) -> None:
        """Emit a :class:`ShardHeartbeat` now and then every ``interval`` s.

        ``snapshot`` supplies the heartbeat's counter fields; it runs on the
        beacon thread, so it must only read (the matrix passes a closure
        over its report counters).
        """

        self.stop_heartbeats()
        stop = threading.Event()

        def beat() -> None:
            while not stop.wait(interval):
                self.emit(ShardHeartbeat, **snapshot())

        self.emit(ShardHeartbeat, **snapshot())
        self._hb_stop = stop
        self._hb_thread = threading.Thread(target=beat, daemon=True)
        self._hb_thread.start()

    def stop_heartbeats(self) -> None:
        if self._hb_stop is not None:
            self._hb_stop.set()
            self._hb_thread.join()
            self._hb_stop = None
            self._hb_thread = None

    @contextlib.contextmanager
    def heartbeats(self, snapshot: Callable[[], Dict[str, int]], interval: float = 5.0):
        """Scoped :meth:`start_heartbeats`/:meth:`stop_heartbeats`."""

        self.start_heartbeats(snapshot, interval=interval)
        try:
            yield self
        finally:
            self.stop_heartbeats()


class NullTelemetryEmitter:
    """The do-nothing emitter used when telemetry is disabled.

    Mirrors the :class:`TelemetryEmitter` surface so call sites need no
    ``if`` guards; everything is a no-op.
    """

    source = ""
    path = None
    emitted = 0
    broken = False

    def __enter__(self) -> "NullTelemetryEmitter":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def emit(self, event_type, **fields) -> None:
        return None

    def start_heartbeats(self, snapshot, interval: float = 5.0) -> None:
        return None

    def stop_heartbeats(self) -> None:
        return None

    @contextlib.contextmanager
    def heartbeats(self, snapshot, interval: float = 5.0):
        yield self

    def close(self) -> None:
        return None
