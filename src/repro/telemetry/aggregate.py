"""Cross-run aggregation and the live fleet view over event logs.

Everything here is a pure fold over the typed event stream -- no store
reads, no re-execution -- which is the point: ``repro runs stats`` must
reproduce the matrix runner's ``cells_computed``/``cells_cached``
accounting *from the log alone* (each counter increment in the runner
emits exactly one :class:`~repro.telemetry.events.CellFinished` /
:class:`~repro.telemetry.events.CellCached`, so counting events equals the
summed shard reports), and ``repro runs watch`` renders the same fold
incrementally while the fleet is still running.

On top of the exact accounting sit the fleet diagnostics the ROADMAP asks
for: cache hit rate, cost per cell, per-scenario verified fractions and
mean safe rates, straggler cells (cost far above their kind's median) and
stale shards (no event within the staleness window and no ``run-finished``).
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.telemetry.events import (
    CellCached,
    CellFinished,
    CellStarted,
    CellStolen,
    RunFinished,
    RunStarted,
    ShardHeartbeat,
    StageTiming,
    SweepJobFinished,
    TelemetryEvent,
)
from repro.telemetry.reader import read_events

__all__ = [
    "ShardState",
    "FleetState",
    "fold_events",
    "accounting",
    "find_stragglers",
    "stale_shards",
    "fleet_stats",
    "render_watch",
    "watch_snapshot",
]

#: A cell's identity inside the fold: (scenario, controller, kind, perturbation).
CellIdentity = Tuple[str, str, str, Optional[str]]

#: A finished cell counts as a straggler beyond this multiple of the
#: median cost of its kind (given at least this many samples to trust).
STRAGGLER_FACTOR = 4.0
STRAGGLER_MIN_SAMPLES = 3

#: Default seconds of event silence before a live shard counts as stale.
DEFAULT_STALE_AFTER = 15.0


@dataclass
class ShardState:
    """Everything the fold knows about one emitting process."""

    source: str
    first_ts: float = 0.0
    last_ts: float = 0.0
    cells_total: int = 0
    cells_owned: int = 0
    computed: int = 0
    cached: int = 0
    stolen: int = 0
    skipped: int = 0
    status: str = "running"
    finished: bool = False
    #: Cells started but not yet finished/cached, in start order.
    in_flight: Dict[CellIdentity, float] = field(default_factory=dict)

    @property
    def cells_done(self) -> int:
        return self.computed + self.cached

    def current_cell(self) -> Optional[Tuple[CellIdentity, float]]:
        """The oldest in-flight cell (identity, started-at), if any."""

        if not self.in_flight:
            return None
        identity = min(self.in_flight, key=lambda key: self.in_flight[key])
        return identity, self.in_flight[identity]


@dataclass
class FleetState:
    """The fold of one (or many) event streams."""

    shards: Dict[str, ShardState] = field(default_factory=dict)
    events: int = 0
    unknown_events: int = 0
    scenarios: List[str] = field(default_factory=list)
    #: Every finished cell: (identity, seconds, status, safe_rate).
    finished_cells: List[Tuple[CellIdentity, float, str, Optional[float]]] = field(default_factory=list)
    stolen_cells: List[Tuple[CellIdentity, bool]] = field(default_factory=list)
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    sweep_jobs: List[SweepJobFinished] = field(default_factory=list)

    @property
    def cells_computed(self) -> int:
        return sum(shard.computed for shard in self.shards.values())

    @property
    def cells_cached(self) -> int:
        return sum(shard.cached for shard in self.shards.values())

    @property
    def cells_stolen(self) -> int:
        return sum(shard.stolen for shard in self.shards.values())

    @property
    def all_finished(self) -> bool:
        """Every shard that ever emitted has published its run-finished."""

        return bool(self.shards) and all(shard.finished for shard in self.shards.values())


def _shard(state: FleetState, event: TelemetryEvent) -> ShardState:
    shard = state.shards.get(event.shard)
    if shard is None:
        shard = state.shards[event.shard] = ShardState(source=event.shard, first_ts=event.ts)
    shard.last_ts = max(shard.last_ts, event.ts)
    return shard


def fold_events(events: Sequence[TelemetryEvent], state: Optional[FleetState] = None) -> FleetState:
    """Fold a time-ordered event batch into (or onto) a :class:`FleetState`.

    Incremental by design: the watch loop keeps one state and folds each
    :meth:`~repro.telemetry.reader.EventTailer.poll` batch onto it.
    """

    if state is None:
        state = FleetState()
    for event in events:
        state.events += 1
        shard = _shard(state, event)
        if isinstance(event, RunStarted):
            shard.cells_total = max(shard.cells_total, event.cells_total)
            shard.cells_owned = max(shard.cells_owned, event.cells_owned)
            for name in event.scenarios:
                if name not in state.scenarios:
                    state.scenarios.append(name)
        elif isinstance(event, CellStarted):
            shard.in_flight[(event.scenario, event.controller, event.cell, event.perturbation)] = event.ts
        elif isinstance(event, CellFinished):
            identity = (event.scenario, event.controller, event.cell, event.perturbation)
            shard.in_flight.pop(identity, None)
            shard.computed += 1
            state.finished_cells.append((identity, event.seconds, event.status, event.safe_rate))
        elif isinstance(event, CellCached):
            identity = (event.scenario, event.controller, event.cell, event.perturbation)
            shard.in_flight.pop(identity, None)
            shard.cached += 1
        elif isinstance(event, CellStolen):
            shard.stolen += 1
            state.stolen_cells.append(
                ((event.scenario, event.controller, event.cell, event.perturbation), event.stale)
            )
        elif isinstance(event, ShardHeartbeat):
            shard.skipped = max(shard.skipped, event.cells_skipped)
        elif isinstance(event, StageTiming):
            state.stage_seconds[event.stage] = state.stage_seconds.get(event.stage, 0.0) + event.seconds
        elif isinstance(event, SweepJobFinished):
            state.sweep_jobs.append(event)
        elif isinstance(event, RunFinished):
            shard.finished = True
            shard.status = event.status
            shard.skipped = max(shard.skipped, event.cells_skipped)
            shard.in_flight.clear()
        else:
            state.unknown_events += 1
    return state


def accounting(state: FleetState) -> Dict[str, int]:
    """The matrix runner's accounting, recovered from the log alone."""

    return {
        "cells_computed": state.cells_computed,
        "cells_cached": state.cells_cached,
        "cells_stolen": state.cells_stolen,
    }


def find_stragglers(
    state: FleetState,
    factor: float = STRAGGLER_FACTOR,
    min_samples: int = STRAGGLER_MIN_SAMPLES,
) -> List[Dict]:
    """Finished cells costing > ``factor`` x the median of their kind."""

    by_kind: Dict[str, List[float]] = {}
    for (_, _, kind, _), seconds, _, _ in state.finished_cells:
        by_kind.setdefault(kind, []).append(seconds)
    stragglers = []
    for (scenario, controller, kind, perturbation), seconds, status, _ in state.finished_cells:
        population = by_kind[kind]
        if len(population) < min_samples:
            continue
        median = statistics.median(population)
        if median > 0 and seconds > factor * median:
            stragglers.append(
                {
                    "scenario": scenario,
                    "controller": controller,
                    "cell": kind,
                    "perturbation": perturbation,
                    "seconds": seconds,
                    "median_seconds": median,
                    "factor": seconds / median,
                    "status": status,
                }
            )
    stragglers.sort(key=lambda row: -row["factor"])
    return stragglers


def stale_shards(
    state: FleetState, now: Optional[float] = None, stale_after: float = DEFAULT_STALE_AFTER
) -> List[str]:
    """Sources still unfinished whose last event is older than the window."""

    now = time.time() if now is None else now
    return sorted(
        shard.source
        for shard in state.shards.values()
        if not shard.finished and now - shard.last_ts > stale_after
    )


def _seconds_summary(samples: List[float]) -> Dict[str, float]:
    if not samples:
        return {"count": 0, "total": 0.0, "mean": 0.0, "median": 0.0, "max": 0.0}
    return {
        "count": len(samples),
        "total": sum(samples),
        "mean": sum(samples) / len(samples),
        "median": statistics.median(samples),
        "max": max(samples),
    }


def fleet_stats(
    run_dirs: Sequence[Union[str, Path]],
    now: Optional[float] = None,
    stale_after: float = DEFAULT_STALE_AFTER,
) -> Dict:
    """Aggregate one or many run directories' event logs into fleet stats.

    The returned dictionary is JSON-able with deterministic content given
    the logs (``stale_shards`` is the one wall-clock-dependent entry);
    ``repro runs stats --json`` serialises it with sorted keys for
    scripts and the future ``repro serve`` daemon.
    """

    state = FleetState()
    per_run = {}
    deduped = []
    for run_dir in run_dirs:
        if str(run_dir) not in {str(seen) for seen in deduped}:
            deduped.append(run_dir)
    for run_dir in deduped:
        events = read_events(run_dir)
        per_run[str(run_dir)] = accounting(fold_events(events))
        state = fold_events(events, state=state)

    computed, cached = state.cells_computed, state.cells_cached
    served = computed + cached
    by_kind: Dict[str, List[float]] = {}
    safe_rates: Dict[str, List[float]] = {}
    statuses: Dict[str, int] = {}
    for (scenario, _, kind, _), seconds, status, safe_rate in state.finished_cells:
        by_kind.setdefault(kind, []).append(seconds)
        statuses[status] = statuses.get(status, 0) + 1
        if safe_rate is not None:
            safe_rates.setdefault(scenario, []).append(safe_rate)

    scenarios: Dict[str, Dict] = {}
    for event in state.sweep_jobs:
        row = scenarios.setdefault(event.system, {"verify_jobs": 0, "verified": 0})
        row["verify_jobs"] += 1
        row["verified"] += int(event.verified)
    for name, rates in safe_rates.items():
        scenarios.setdefault(name, {})["mean_safe_rate"] = sum(rates) / len(rates)
    for name, row in scenarios.items():
        if row.get("verify_jobs"):
            row["verified_fraction"] = row["verified"] / row["verify_jobs"]

    return {
        "runs": len(per_run),
        "per_run": per_run,
        "events": state.events,
        "shards": len(state.shards),
        "all_finished": state.all_finished,
        "cells_computed": computed,
        "cells_cached": cached,
        "cells_stolen": state.cells_stolen,
        "cache_hit_rate": (cached / served) if served else 0.0,
        "cell_seconds": _seconds_summary([seconds for _, seconds, _, _ in state.finished_cells]),
        "cell_seconds_by_kind": {kind: _seconds_summary(samples) for kind, samples in sorted(by_kind.items())},
        "cell_statuses": dict(sorted(statuses.items())),
        "stage_seconds": dict(sorted(state.stage_seconds.items())),
        "scenarios": {name: dict(sorted(row.items())) for name, row in sorted(scenarios.items())},
        "stragglers": find_stragglers(state),
        "stale_shards": stale_shards(state, now=now, stale_after=stale_after),
    }


def _cell_label(identity: CellIdentity) -> str:
    scenario, controller, kind, perturbation = identity
    label = f"{kind} {scenario}:{controller}"
    if perturbation is not None:
        label += f":{perturbation}"
    return label


def render_watch(
    state: FleetState, now: Optional[float] = None, stale_after: float = DEFAULT_STALE_AFTER
) -> str:
    """One text frame of the live fleet view (per-shard table + footer)."""

    now = time.time() if now is None else now
    header = (
        f"{'shard':16s} {'status':20s} {'done':>9s} {'comp':>6s} {'cache':>6s} "
        f"{'stolen':>6s} {'age':>7s}  current"
    )
    lines = [header, "-" * len(header)]
    stale = set(stale_shards(state, now=now, stale_after=stale_after))
    for source in sorted(state.shards):
        shard = state.shards[source]
        status = shard.status if shard.finished else ("stale?" if source in stale else "running")
        total = f"{shard.cells_done}/{shard.cells_total}" if shard.cells_total else str(shard.cells_done)
        age = max(0.0, now - shard.last_ts)
        current = shard.current_cell()
        busy = "-"
        if current is not None and not shard.finished:
            identity, started = current
            busy = f"{_cell_label(identity)} ({max(0.0, now - started):.1f}s)"
        lines.append(
            f"{source:16s} {status:20s} {total:>9s} {shard.computed:6d} {shard.cached:6d} "
            f"{shard.stolen:6d} {age:6.1f}s  {busy}"
        )
    computed, cached = state.cells_computed, state.cells_cached
    served = computed + cached
    hit_rate = f"{100.0 * cached / served:.1f}%" if served else "-"
    lines.append(
        f"{len(state.shards)} shard(s) | {computed} computed, {cached} cached "
        f"(hit rate {hit_rate}), {state.cells_stolen} stolen | "
        f"{'all finished' if state.all_finished else 'running'}"
    )
    return "\n".join(lines)


def watch_snapshot(
    run_dir: Union[str, Path],
    now: Optional[float] = None,
    stale_after: float = DEFAULT_STALE_AFTER,
) -> str:
    """Fold a run directory's whole event history into one watch frame."""

    return render_watch(fold_events(read_events(run_dir)), now=now, stale_after=stale_after)
