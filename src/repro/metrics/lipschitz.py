"""Lipschitz-constant reporting for arbitrary controllers.

Table I reports ``L`` for every controller that has a well-defined network
Lipschitz bound: the neural experts, ``kappa_D`` and ``kappa*``; linear and
polynomial controllers get the analytic constant of their feedback law; the
mixed design ``A_W`` and the switching baseline ``A_S`` have no single
constant (the paper prints '-'), represented here as ``None``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.experts.base import Controller, LinearStateFeedback, NeuralController
from repro.experts.lqr import LQRController
from repro.experts.polynomial import PolynomialController
from repro.nn.lipschitz import empirical_lipschitz, network_lipschitz
from repro.systems.base import ControlSystem


def controller_lipschitz(controller: Controller, system: Optional[ControlSystem] = None) -> Optional[float]:
    """Best-available Lipschitz constant of a controller, or ``None``.

    Neural controllers use the paper's product-of-layer-norms bound; linear
    feedback uses the gain's spectral norm; polynomial controllers use an
    empirical bound over the safe region (requires ``system``); everything
    else returns ``None`` (rendered as '-' in the tables).
    """

    # The mixed design A_W and the switching baseline A_S have no single
    # Lipschitz constant -- the paper prints '-' for them.
    from repro.baselines.switching import SwitchingController
    from repro.core.mixing import MixedController

    if isinstance(controller, (MixedController, SwitchingController)):
        return None

    network = getattr(controller, "network", None)
    if isinstance(controller, NeuralController) or (network is not None and hasattr(network, "layers")):
        return float(network_lipschitz(network if network is not None else controller.network))
    if isinstance(controller, (LinearStateFeedback, LQRController)):
        return float(np.linalg.norm(controller.gain, 2))
    if isinstance(controller, PolynomialController) and system is not None:
        return _sampled_lipschitz(controller, system)
    if system is not None and isinstance(controller, Controller):
        # Model-based experts without an analytic constant (e.g. the
        # feedback-linearising oscillator expert): sampled estimate over X.
        return _sampled_lipschitz(controller, system)
    return None


def _sampled_lipschitz(controller: Controller, system: ControlSystem, samples: int = 512, epsilon: float = 1e-4) -> float:
    """Finite-difference estimate of the Lipschitz constant over the safe region."""

    rng = np.random.default_rng(0)
    box = system.safe_region
    points = box.sample(rng, count=samples)
    directions = rng.normal(size=points.shape)
    norms = np.linalg.norm(directions, axis=1, keepdims=True)
    norms[norms == 0.0] = 1.0
    directions /= norms
    best = 0.0
    for point, direction in zip(points, directions):
        base = np.atleast_1d(controller(point))
        moved = np.atleast_1d(controller(point + epsilon * direction))
        best = max(best, float(np.linalg.norm(moved - base) / epsilon))
    return best
