"""Control-signal traces under attack (Fig. 2 of the paper).

Fig. 2 plots the normalised control input ``u(t)`` of ``kappa_D`` versus
``kappa*`` while the system is under adversarial attack; the robustly
distilled controller's signal is visibly smoother and smaller.  This module
produces those series so the Fig. 2 benchmark can emit them as CSV.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from repro.attacks.adversary import perturbation_budget
from repro.attacks.fgsm import FGSMAttack
from repro.systems.base import ControlSystem
from repro.systems.simulation import ControllerFn, rollout
from repro.utils.seeding import RngLike, get_rng


@dataclass
class SignalTrace:
    """One control-signal trajectory under attack."""

    controls: np.ndarray
    normalized: np.ndarray
    energy: float
    safe: bool

    def __len__(self) -> int:
        return len(self.controls)


def control_signal_trace(
    system: ControlSystem,
    controller: ControllerFn,
    initial_state: Optional[Sequence[float]] = None,
    attack_fraction: float = 0.1,
    horizon: Optional[int] = None,
    rng: RngLike = None,
) -> SignalTrace:
    """Simulate one attacked trajectory and return its (normalised) control signal.

    The signal is normalised by the control bound so different systems plot
    on the same axis, matching the figure's y-axis convention.
    """

    generator = get_rng(rng)
    if initial_state is None:
        initial_state = system.sample_initial_state(generator)
    attack = FGSMAttack(controller, perturbation_budget(system, attack_fraction))
    trajectory = rollout(
        system,
        controller,
        initial_state,
        horizon=horizon,
        perturbation=attack,
        rng=generator,
        stop_on_violation=False,
    )
    controls = trajectory.controls[:, 0] if trajectory.controls.size else np.zeros(0)
    scale = float(np.max(np.abs(np.concatenate([system.control_bound.low, system.control_bound.high]))))
    normalized = controls / scale if scale > 0 else controls
    return SignalTrace(
        controls=controls,
        normalized=normalized,
        energy=trajectory.energy,
        safe=trajectory.safe,
    )


def compare_signal_traces(
    system: ControlSystem,
    controllers: Dict[str, ControllerFn],
    attack_fraction: float = 0.1,
    horizon: Optional[int] = None,
    seed: int = 0,
) -> Dict[str, SignalTrace]:
    """Trace every controller from the *same* initial state under attack."""

    generator = get_rng(seed)
    initial_state = system.sample_initial_state(generator)
    traces = {}
    for name, controller in controllers.items():
        traces[name] = control_signal_trace(
            system,
            controller,
            initial_state=initial_state,
            attack_fraction=attack_fraction,
            horizon=horizon,
            rng=get_rng(seed + 1),
        )
    return traces
