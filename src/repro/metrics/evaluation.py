"""Controller evaluation harness producing the paper's table rows.

``evaluate_controllers`` takes the named controllers of one system (the
experts, ``A_S``, ``A_W``, ``kappa_D``, ``kappa*``) and returns, for each,
the metrics of Table I (clean safe rate, energy, Lipschitz constant) and
optionally of Table II (safe rate and energy under FGSM attack and under
measurement noise), all measured on the same set of sampled initial states.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.config import EvaluationConfig
from repro.experts.base import Controller
from repro.metrics.lipschitz import controller_lipschitz
from repro.metrics.robustness import RobustnessResult, evaluate_robustness
from repro.systems.base import ControlSystem
from repro.systems.simulation import sample_initial_states
from repro.utils.seeding import RngLike, get_rng
from repro.utils.tables import ResultTable


@dataclass
class ControllerMetrics:
    """All metrics for one controller on one system."""

    name: str
    clean: RobustnessResult
    lipschitz: Optional[float] = None
    under_attack: Optional[RobustnessResult] = None
    under_noise: Optional[RobustnessResult] = None

    def as_dict(self) -> dict:
        record = {
            "name": self.name,
            "safe_rate": self.clean.safe_rate,
            "energy": self.clean.mean_energy,
            "lipschitz": self.lipschitz,
        }
        if self.under_attack is not None:
            record["attack_safe_rate"] = self.under_attack.safe_rate
            record["attack_energy"] = self.under_attack.mean_energy
        if self.under_noise is not None:
            record["noise_safe_rate"] = self.under_noise.safe_rate
            record["noise_energy"] = self.under_noise.mean_energy
        return record


def evaluate_controller(
    system: ControlSystem,
    controller: Controller,
    name: Optional[str] = None,
    samples: Optional[int] = None,
    perturbation_fraction: Optional[float] = None,
    include_perturbed: bool = False,
    initial_states: Optional[np.ndarray] = None,
    rng: RngLike = None,
    batch_size: Optional[int] = None,
    config: Optional[EvaluationConfig] = None,
) -> ControllerMetrics:
    """Measure one controller; see :func:`evaluate_controllers` for the batch form.

    ``config`` supplies defaults for ``samples``, ``perturbation_fraction``
    and ``batch_size``; explicitly passed values win over it.
    """

    config = config if config is not None else EvaluationConfig()
    samples = config.samples if samples is None else samples
    perturbation_fraction = (
        config.perturbation_fraction if perturbation_fraction is None else perturbation_fraction
    )
    batch_size = config.batch_size if batch_size is None else batch_size
    generator = get_rng(rng)
    if initial_states is None:
        initial_states = sample_initial_states(system, samples, rng=generator)
    name = name if name is not None else getattr(controller, "name", "controller")

    clean = evaluate_robustness(
        system,
        controller,
        perturbation="none",
        samples=samples,
        rng=generator,
        initial_states=initial_states,
        batch_size=batch_size,
    )
    metrics = ControllerMetrics(
        name=name,
        clean=clean,
        lipschitz=controller_lipschitz(controller, system),
    )
    if include_perturbed:
        metrics.under_attack = evaluate_robustness(
            system,
            controller,
            perturbation="attack",
            fraction=perturbation_fraction,
            samples=samples,
            rng=generator,
            initial_states=initial_states,
            batch_size=batch_size,
        )
        metrics.under_noise = evaluate_robustness(
            system,
            controller,
            perturbation="noise",
            fraction=perturbation_fraction,
            samples=samples,
            rng=generator,
            initial_states=initial_states,
            batch_size=batch_size,
        )
    return metrics


def evaluate_controllers(
    system: ControlSystem,
    controllers: Dict[str, Controller],
    samples: Optional[int] = None,
    perturbation_fraction: Optional[float] = None,
    include_perturbed: bool = False,
    seed: int = 0,
    batch_size: Optional[int] = None,
    config: Optional[EvaluationConfig] = None,
) -> Dict[str, ControllerMetrics]:
    """Evaluate every named controller on the same sampled initial states.

    ``config`` supplies defaults for ``samples``, ``perturbation_fraction``
    and ``batch_size``; explicitly passed values win over it.
    """

    config = config if config is not None else EvaluationConfig()
    samples = config.samples if samples is None else samples
    perturbation_fraction = (
        config.perturbation_fraction if perturbation_fraction is None else perturbation_fraction
    )
    batch_size = config.batch_size if batch_size is None else batch_size
    generator = get_rng(seed)
    initial_states = sample_initial_states(system, samples, rng=generator)
    results: Dict[str, ControllerMetrics] = {}
    for name, controller in controllers.items():
        results[name] = evaluate_controller(
            system,
            controller,
            name=name,
            samples=samples,
            perturbation_fraction=perturbation_fraction,
            include_perturbed=include_perturbed,
            initial_states=initial_states,
            rng=get_rng(seed + 1),
            batch_size=batch_size,
        )
    return results


def metrics_to_table(title: str, metrics: Dict[str, ControllerMetrics]) -> ResultTable:
    """Render a Table-I-style result table (rows Sr / e / L, one column per controller)."""

    table = ResultTable(title, columns=list(metrics.keys()))
    table.add_row("Sr (%)", {name: 100.0 * metric.clean.safe_rate for name, metric in metrics.items()})
    table.add_row("e", {name: metric.clean.mean_energy for name, metric in metrics.items()})
    table.add_row("L", {name: metric.lipschitz for name, metric in metrics.items()})
    return table


def perturbed_metrics_to_table(title: str, metrics: Dict[str, ControllerMetrics]) -> ResultTable:
    """Render a Table-II-style table (attack and noise rows) for the given controllers."""

    table = ResultTable(title, columns=list(metrics.keys()))
    table.add_row(
        "Sr attack (%)",
        {
            name: (100.0 * metric.under_attack.safe_rate if metric.under_attack else None)
            for name, metric in metrics.items()
        },
    )
    table.add_row(
        "e attack",
        {name: (metric.under_attack.mean_energy if metric.under_attack else None) for name, metric in metrics.items()},
    )
    table.add_row(
        "Sr noise (%)",
        {
            name: (100.0 * metric.under_noise.safe_rate if metric.under_noise else None)
            for name, metric in metrics.items()
        },
    )
    table.add_row(
        "e noise",
        {name: (metric.under_noise.mean_energy if metric.under_noise else None) for name, metric in metrics.items()},
    )
    return table
