"""Control-energy metric (Property 2 of the paper)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.systems.base import ControlSystem
from repro.systems.simulation import ControllerFn, evaluate_rollouts, sample_initial_states
from repro.utils.seeding import RngLike, get_rng


def energy_metric(
    system: ControlSystem,
    controller: ControllerFn,
    samples: int = 500,
    horizon: Optional[int] = None,
    rng: RngLike = None,
    initial_states: Optional[np.ndarray] = None,
    batch_size: Optional[int] = None,
) -> float:
    """Average 1-norm control energy over the safe trajectories.

    The expectation of Eq. (3) is taken over the controller's safe initial
    state set, estimated here by averaging over the sampled trajectories
    that stay safe.  Rollouts run on the batched engine; ``batch_size``
    caps the lockstep batch (``None`` = one batch).
    """

    generator = get_rng(rng)
    if initial_states is None:
        initial_states = sample_initial_states(system, samples, rng=generator)
    result = evaluate_rollouts(
        system, controller, initial_states, horizon=horizon, rng=generator, batch_size=batch_size
    )
    return result.mean_energy
