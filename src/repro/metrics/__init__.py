"""Evaluation metrics and the table-building harness.

Everything the paper's tables report lives here: the safe control rate
(clean, under FGSM attack, under measurement noise), the control energy, the
Lipschitz constant, control-signal traces (Fig. 2) and the verification-time
measurements, plus :func:`evaluate_controllers` which turns a dictionary of
named controllers into the rows of Table I / Table II.
"""

from repro.metrics.robustness import RobustnessResult, evaluate_robustness
from repro.metrics.energy import energy_metric
from repro.metrics.lipschitz import controller_lipschitz
from repro.metrics.signals import control_signal_trace
from repro.metrics.evaluation import ControllerMetrics, evaluate_controller, evaluate_controllers

__all__ = [
    "RobustnessResult",
    "evaluate_robustness",
    "energy_metric",
    "controller_lipschitz",
    "control_signal_trace",
    "ControllerMetrics",
    "evaluate_controller",
    "evaluate_controllers",
]
