"""Control-robustness metric: safe control rate under perturbations.

Property 1 of the paper: the safe control rate ``Sr`` under optimised
adversarial attacks or random measurement noises on the system state.  The
estimate follows the paper's protocol -- sample initial states from ``X0``,
simulate the closed loop, count safe trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.attacks.adversary import perturbation_budget
from repro.attacks.fgsm import FGSMAttack
from repro.attacks.noise import UniformMeasurementNoise
from repro.systems.base import ControlSystem
from repro.systems.simulation import ControllerFn, evaluate_rollouts, sample_initial_states
from repro.utils.seeding import RngLike, get_rng


@dataclass
class RobustnessResult:
    """Safe control rate and energy under one perturbation regime."""

    safe_rate: float
    mean_energy: float
    perturbation: str
    samples: int

    def as_dict(self) -> dict:
        return {
            "safe_rate": self.safe_rate,
            "mean_energy": self.mean_energy,
            "perturbation": self.perturbation,
            "samples": self.samples,
        }


def evaluate_robustness(
    system: ControlSystem,
    controller: ControllerFn,
    perturbation: str = "none",
    fraction: float = 0.1,
    samples: int = 500,
    rng: RngLike = None,
    initial_states: Optional[np.ndarray] = None,
    batch_size: Optional[int] = None,
) -> RobustnessResult:
    """Estimate ``Sr`` and ``e`` under the requested perturbation regime.

    The Monte-Carlo rollouts run on the batched engine
    (:func:`repro.systems.simulation.rollout_batch`).

    Parameters
    ----------
    perturbation:
        ``"none"`` (Table I), ``"attack"`` (FGSM, Table II left) or
        ``"noise"`` (uniform measurement noise, Table II right).
    fraction:
        Perturbation magnitude as a fraction of the system state bound; the
        paper uses 10-15 %.
    initial_states:
        Pre-drawn initial states, so every controller in a comparison can be
        evaluated on exactly the same sample.
    batch_size:
        How many trajectories advance in lockstep at once; ``None`` runs the
        whole sample as one batch.
    """

    generator = get_rng(rng)
    if initial_states is None:
        initial_states = sample_initial_states(system, samples, rng=generator)
    else:
        initial_states = np.atleast_2d(np.asarray(initial_states, dtype=np.float64))

    if perturbation == "none":
        perturbation_fn = None
    elif perturbation == "noise":
        perturbation_fn = UniformMeasurementNoise(perturbation_budget(system, fraction))
    elif perturbation == "attack":
        perturbation_fn = FGSMAttack(controller, perturbation_budget(system, fraction))
    else:
        raise ValueError("perturbation must be 'none', 'noise' or 'attack'")

    result = evaluate_rollouts(
        system,
        controller,
        initial_states,
        perturbation=perturbation_fn,
        rng=generator,
        batch_size=batch_size,
    )
    return RobustnessResult(
        safe_rate=result.safe_rate,
        mean_energy=result.mean_energy,
        perturbation=perturbation,
        samples=len(initial_states),
    )
