"""The cartpole test system (Section IV, system 3).

Continuous-force cartpole with the paper's constants::

    m_c = 1, m_p = 0.1, m_t = 1.1, g = 9.8, l = 1, tau = 0.02, T = 200

State ``s = (position, velocity, angle, angular velocity)``.  The safe region
constrains position to ``[-2.4, 2.4]`` and angle to ``[-0.209, 0.209]`` rad;
initial states are sampled from ``[-0.2, 0.2]^4`` (a subset of ``X``).  The
paper leaves the two velocity components unconstrained; this implementation
bounds them at ``[-3, 3]`` because the safe region must be a bounded box for
uniform sampling and for the Bernstein-based verification -- any trajectory
that balances the pole from ``X0`` stays well inside that range.  The
intermediate quantities follow the equations printed in the paper::

    psi       = (u + m_p * l * s4^2 * sin(s3)) / m_t
    theta_acc = (g * sin(s3) - cos(s3) * psi) / (l * (1.333 - m_p * cos(s3)^2 / m_t))
    s_acc     = psi - m_p * l * cos(s3) * theta_acc / m_t
"""

from __future__ import annotations

import numpy as np

from repro.systems.base import ControlSystem
from repro.systems.disturbance import NoDisturbance
from repro.systems.sets import Box


class CartPole(ControlSystem):
    """Continuous-force cartpole balancing task."""

    name = "cartpole"

    def __init__(
        self,
        dt: float = 0.02,
        horizon: int = 200,
        control_limit: float = 10.0,
        cart_mass: float = 1.0,
        pole_mass: float = 0.1,
        pole_length: float = 1.0,
        gravity: float = 9.8,
        position_limit: float = 2.4,
        angle_limit: float = 0.209,
        velocity_limit: float = 3.0,
        initial_half_width: float = 0.2,
    ):
        self.cart_mass = float(cart_mass)
        self.pole_mass = float(pole_mass)
        self.total_mass = self.cart_mass + self.pole_mass
        self.pole_length = float(pole_length)
        self.gravity = float(gravity)

        safe_region = Box(
            [-position_limit, -velocity_limit, -angle_limit, -velocity_limit],
            [position_limit, velocity_limit, angle_limit, velocity_limit],
        )
        initial_set = Box.symmetric(initial_half_width, dimension=4)
        super().__init__(
            state_dim=4,
            control_dim=1,
            safe_region=safe_region,
            initial_set=initial_set,
            control_bound=Box.symmetric(control_limit, dimension=1),
            horizon=horizon,
            disturbance=NoDisturbance(4),
            dt=dt,
        )

    def dynamics(self, state: np.ndarray, control: np.ndarray, disturbance: np.ndarray) -> np.ndarray:
        position, velocity, angle, angular_velocity = state
        force = control[0]
        sin_theta = np.sin(angle)
        cos_theta = np.cos(angle)

        psi = (force + self.pole_mass * self.pole_length * angular_velocity**2 * sin_theta) / self.total_mass
        theta_acc = (self.gravity * sin_theta - cos_theta * psi) / (
            self.pole_length * (4.0 / 3.0 - self.pole_mass * cos_theta**2 / self.total_mass)
        )
        s_acc = psi - self.pole_mass * self.pole_length * cos_theta * theta_acc / self.total_mass

        next_state = np.array(
            [
                position + self.dt * velocity,
                velocity + self.dt * s_acc,
                angle + self.dt * angular_velocity,
                angular_velocity + self.dt * theta_acc,
            ]
        )
        if disturbance.size == self.state_dim:
            next_state = next_state + disturbance
        return next_state

    def dynamics_batch(
        self, states: np.ndarray, controls: np.ndarray, disturbances: np.ndarray
    ) -> np.ndarray:
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        controls = np.atleast_2d(np.asarray(controls, dtype=np.float64))
        disturbances = np.atleast_2d(np.asarray(disturbances, dtype=np.float64))
        position = states[:, 0]
        velocity = states[:, 1]
        angle = states[:, 2]
        angular_velocity = states[:, 3]
        force = controls[:, 0]
        sin_theta = np.sin(angle)
        cos_theta = np.cos(angle)

        psi = (force + self.pole_mass * self.pole_length * angular_velocity**2 * sin_theta) / self.total_mass
        theta_acc = (self.gravity * sin_theta - cos_theta * psi) / (
            self.pole_length * (4.0 / 3.0 - self.pole_mass * cos_theta**2 / self.total_mass)
        )
        s_acc = psi - self.pole_mass * self.pole_length * cos_theta * theta_acc / self.total_mass

        next_states = np.stack(
            [
                position + self.dt * velocity,
                velocity + self.dt * s_acc,
                angle + self.dt * angular_velocity,
                angular_velocity + self.dt * theta_acc,
            ],
            axis=1,
        )
        if disturbances.shape[-1] == self.state_dim:
            next_states = next_states + disturbances
        return next_states
