"""Abstract discrete-time feedback control system.

Mirrors the problem formulation of Section II:

.. math::  s(t+1) = f(s(t), u(t), \\omega(t), \\delta(t))

with a safe region ``X``, an initial set ``X0 \\subseteq X``, a control bound
``U``, a bounded external disturbance ``\\omega`` and a bounded state
perturbation ``\\delta`` that models adversarial attacks or measurement
noise.  Controllers observe the (possibly perturbed) state and return a
control input which the plant clips to ``U``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.systems.disturbance import DisturbanceModel, NoDisturbance
from repro.systems.sets import Box
from repro.utils.seeding import RngLike, get_rng


class ControlSystem:
    """Base class for the paper's discrete-time plants.

    Sub-classes implement :meth:`dynamics` -- the deterministic part of the
    state update given the applied (already clipped) control and the sampled
    external disturbance -- and define the sets/box bounds in ``__init__``.

    Attributes
    ----------
    state_dim, control_dim:
        Dimensions of the state and control vectors.
    safe_region:
        ``X``: leaving it terminates the episode with the safety punishment.
    initial_set:
        ``X0``: where initial states are sampled from.
    control_bound:
        ``U``: applied controls are clipped to this box.
    disturbance:
        The external disturbance model ``omega``.
    horizon:
        Episode length ``T`` used in the paper's energy metric.
    name:
        Human-readable system name used in tables.
    """

    name = "system"

    def __init__(
        self,
        state_dim: int,
        control_dim: int,
        safe_region: Box,
        initial_set: Box,
        control_bound: Box,
        horizon: int,
        disturbance: Optional[DisturbanceModel] = None,
        dt: float = 0.05,
    ):
        if state_dim <= 0 or control_dim <= 0:
            raise ValueError("state and control dimensions must be positive")
        if safe_region.dimension != state_dim:
            raise ValueError("safe_region dimension does not match state_dim")
        if initial_set.dimension != state_dim:
            raise ValueError("initial_set dimension does not match state_dim")
        if control_bound.dimension != control_dim:
            raise ValueError("control_bound dimension does not match control_dim")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self.state_dim = state_dim
        self.control_dim = control_dim
        self.safe_region = safe_region
        self.initial_set = initial_set
        self.control_bound = control_bound
        self.horizon = int(horizon)
        self.disturbance = disturbance if disturbance is not None else NoDisturbance(state_dim)
        self.dt = float(dt)

    # ------------------------------------------------------------------
    # Interface to implement
    # ------------------------------------------------------------------
    def dynamics(self, state: np.ndarray, control: np.ndarray, disturbance: np.ndarray) -> np.ndarray:
        """One-step deterministic state update (control already clipped)."""

        raise NotImplementedError

    def dynamics_batch(
        self, states: np.ndarray, controls: np.ndarray, disturbances: np.ndarray
    ) -> np.ndarray:
        """Vectorised :meth:`dynamics` over ``(N, state_dim)`` batches.

        Inputs are ``states (N, state_dim)``, ``controls (N, control_dim)``
        (already clipped) and ``disturbances (N, omega_dim)``; the result has
        shape ``(N, state_dim)`` and row ``i`` must equal
        ``dynamics(states[i], controls[i], disturbances[i])``.  The default
        loops over rows; the concrete test systems override it with NumPy
        array expressions so the batched rollout engine runs at array speed.
        """

        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        controls = np.atleast_2d(np.asarray(controls, dtype=np.float64))
        disturbances = np.atleast_2d(np.asarray(disturbances, dtype=np.float64))
        return np.stack(
            [
                self.dynamics(state, control, disturbance)
                for state, control, disturbance in zip(states, controls, disturbances)
            ],
            axis=0,
        )

    # ------------------------------------------------------------------
    # Common behaviour
    # ------------------------------------------------------------------
    def clip_control(self, control: Union[float, Sequence[float]]) -> np.ndarray:
        """Clip a raw control command to the admissible box ``U``."""

        control = np.atleast_1d(np.asarray(control, dtype=np.float64))
        if control.size != self.control_dim:
            raise ValueError(
                f"control has dimension {control.size}, expected {self.control_dim}"
            )
        return self.control_bound.clip(control)

    def step(
        self,
        state: Sequence[float],
        control: Sequence[float],
        rng: RngLike = None,
        disturbance: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Advance the plant by one sampling period.

        ``disturbance`` overrides random sampling when provided (used by the
        verification code, which enumerates disturbance extremes instead).
        """

        state = np.asarray(state, dtype=np.float64)
        if state.shape != (self.state_dim,):
            raise ValueError(f"state has shape {state.shape}, expected ({self.state_dim},)")
        clipped = self.clip_control(control)
        if disturbance is None:
            disturbance = self.disturbance.sample(get_rng(rng))
        disturbance = np.atleast_1d(np.asarray(disturbance, dtype=np.float64))
        return self.dynamics(state, clipped, disturbance)

    def clip_control_batch(self, controls: np.ndarray) -> np.ndarray:
        """Clip a ``(N, control_dim)`` batch of raw commands to ``U``."""

        controls = np.atleast_2d(np.asarray(controls, dtype=np.float64))
        if controls.shape[-1] != self.control_dim:
            raise ValueError(
                f"controls have dimension {controls.shape[-1]}, expected {self.control_dim}"
            )
        return np.clip(controls, self.control_bound.low, self.control_bound.high)

    def step_batch(
        self,
        states: np.ndarray,
        controls: np.ndarray,
        rng: RngLike = None,
        disturbances: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Advance a ``(N, state_dim)`` batch of plants by one period.

        The vectorised counterpart of :meth:`step`: controls are clipped, one
        disturbance is sampled per batch member (unless ``disturbances``
        overrides the sampling) and :meth:`dynamics_batch` produces the next
        states.  With ``N = 1`` this consumes the generator stream exactly
        like a single :meth:`step` call.
        """

        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        if states.shape[-1] != self.state_dim:
            raise ValueError(f"states have shape {states.shape}, expected (N, {self.state_dim})")
        clipped = self.clip_control_batch(controls)
        if disturbances is None:
            disturbances = self.disturbance.sample_batch(get_rng(rng), count=len(states))
        disturbances = np.atleast_2d(np.asarray(disturbances, dtype=np.float64))
        return self.dynamics_batch(states, clipped, disturbances)

    def is_safe(self, state: Sequence[float]) -> bool:
        """Whether ``state`` lies inside the safe region ``X``."""

        return self.safe_region.contains(state)

    def is_safe_batch(self, states: np.ndarray) -> np.ndarray:
        """Per-row safety mask for a ``(N, state_dim)`` batch of states."""

        return self.safe_region.contains_batch(states)

    def sample_initial_state(self, rng: RngLike = None) -> np.ndarray:
        return self.initial_set.sample(get_rng(rng))

    def state_scale(self) -> np.ndarray:
        """Half-width of the safe region, used to normalise perturbations.

        The paper expresses attack/noise magnitudes as a percentage of the
        "system state value bound"; this vector is that bound.
        """

        return np.maximum(np.abs(self.safe_region.low), np.abs(self.safe_region.high))

    def describe(self) -> dict:
        """A JSON-friendly description used in experiment records."""

        return {
            "name": self.name,
            "state_dim": self.state_dim,
            "control_dim": self.control_dim,
            "horizon": self.horizon,
            "dt": self.dt,
            "safe_region": [list(interval) for interval in self.safe_region],
            "initial_set": [list(interval) for interval in self.initial_set],
            "control_bound": [list(interval) for interval in self.control_bound],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(state_dim={self.state_dim}, control_dim={self.control_dim}, T={self.horizon})"
