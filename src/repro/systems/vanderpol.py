"""The Van der Pol oscillator test system (Section IV, system 1).

Discrete-time dynamics with sampling period ``tau = 0.05``::

    s1(t+1) = s1(t) + tau * s2(t)
    s2(t+1) = s2(t) + tau * [(1 - s1(t)^2) * s2(t) - s1(t) + u(t)] + omega(t)

with ``X = X0 = [-2, 2]^2``, ``u in [-20, 20]``, ``omega ~ U[-0.05, 0.05]``
and an episode length of ``T = 100`` steps.
"""

from __future__ import annotations

import numpy as np

from repro.systems.base import ControlSystem
from repro.systems.disturbance import UniformDisturbance
from repro.systems.sets import Box


class VanDerPolOscillator(ControlSystem):
    """Van der Pol oscillator with control on the second state derivative."""

    name = "vanderpol"

    def __init__(
        self,
        dt: float = 0.05,
        horizon: int = 100,
        control_limit: float = 20.0,
        state_limit: float = 2.0,
        disturbance_bound: float = 0.05,
        mu: float = 1.0,
    ):
        self.mu = float(mu)
        super().__init__(
            state_dim=2,
            control_dim=1,
            safe_region=Box.symmetric(state_limit, dimension=2),
            initial_set=Box.symmetric(state_limit, dimension=2),
            control_bound=Box.symmetric(control_limit, dimension=1),
            horizon=horizon,
            disturbance=UniformDisturbance(disturbance_bound),
            dt=dt,
        )

    def dynamics(self, state: np.ndarray, control: np.ndarray, disturbance: np.ndarray) -> np.ndarray:
        s1, s2 = state
        u = control[0]
        omega = disturbance[0] if disturbance.size else 0.0
        next_s1 = s1 + self.dt * s2
        next_s2 = s2 + self.dt * ((1.0 - s1**2) * self.mu * s2 - s1 + u) + omega
        return np.array([next_s1, next_s2])

    def dynamics_batch(
        self, states: np.ndarray, controls: np.ndarray, disturbances: np.ndarray
    ) -> np.ndarray:
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        controls = np.atleast_2d(np.asarray(controls, dtype=np.float64))
        disturbances = np.atleast_2d(np.asarray(disturbances, dtype=np.float64))
        s1 = states[:, 0]
        s2 = states[:, 1]
        u = controls[:, 0]
        omega = disturbances[:, 0] if disturbances.shape[-1] else np.zeros(len(states))
        next_s1 = s1 + self.dt * s2
        next_s2 = s2 + self.dt * ((1.0 - s1**2) * self.mu * s2 - s1 + u) + omega
        return np.stack([next_s1, next_s2], axis=1)
