"""Inverted pendulum plant (scenario catalog addition, not in the paper).

Torque-controlled rigid pendulum balanced at the upright unstable
equilibrium, Euler-discretised at ``tau = 0.05``::

    theta(t+1) = theta(t) + tau * omega(t)
    omega(t+1) = omega(t) + tau * [ (g / l) * sin(theta(t)) - b * omega(t)
                                    + u(t) / (m * l^2) ] + w(t)

with the angle measured from the upright position, so ``sin(theta)`` is the
destabilising gravity term.  The safe region bounds the angle to
``[-1.2, 1.2]`` rad and the angular velocity to ``[-3, 3]``; initial states
are sampled from ``[-0.6, 0.6]^2`` and a small uniform torque-side
disturbance ``w ~ U[-0.02, 0.02]`` acts on the velocity state, mirroring how
the Van der Pol oscillator is disturbed.

The plant is feedback-linearizable (the control enters the velocity update
affinely), which is what the default κ1 expert exploits; see
``repro.experts.factory.pendulum_experts``.
"""

from __future__ import annotations

import numpy as np

from repro.systems.base import ControlSystem
from repro.systems.disturbance import UniformDisturbance
from repro.systems.sets import Box


class InvertedPendulum(ControlSystem):
    """Torque-controlled inverted pendulum about the upright equilibrium."""

    name = "pendulum"

    def __init__(
        self,
        dt: float = 0.05,
        horizon: int = 100,
        control_limit: float = 12.0,
        angle_limit: float = 1.2,
        velocity_limit: float = 3.0,
        initial_half_width: float = 0.6,
        mass: float = 1.0,
        length: float = 1.0,
        gravity: float = 9.8,
        damping: float = 0.0,
        disturbance_bound: float = 0.02,
    ):
        self.mass = float(mass)
        self.length = float(length)
        self.gravity = float(gravity)
        self.damping = float(damping)
        super().__init__(
            state_dim=2,
            control_dim=1,
            safe_region=Box([-angle_limit, -velocity_limit], [angle_limit, velocity_limit]),
            initial_set=Box.symmetric(initial_half_width, dimension=2),
            control_bound=Box.symmetric(control_limit, dimension=1),
            horizon=horizon,
            disturbance=UniformDisturbance(disturbance_bound),
            dt=dt,
        )

    @property
    def inertia(self) -> float:
        """Rotational inertia ``m * l^2`` dividing the applied torque."""

        return self.mass * self.length**2

    def dynamics(self, state: np.ndarray, control: np.ndarray, disturbance: np.ndarray) -> np.ndarray:
        theta, omega = state
        u = control[0]
        w = disturbance[0] if disturbance.size else 0.0
        accel = (self.gravity / self.length) * np.sin(theta) - self.damping * omega + u / self.inertia
        next_theta = theta + self.dt * omega
        next_omega = omega + self.dt * accel + w
        return np.array([next_theta, next_omega])

    def dynamics_batch(
        self, states: np.ndarray, controls: np.ndarray, disturbances: np.ndarray
    ) -> np.ndarray:
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        controls = np.atleast_2d(np.asarray(controls, dtype=np.float64))
        disturbances = np.atleast_2d(np.asarray(disturbances, dtype=np.float64))
        theta = states[:, 0]
        omega = states[:, 1]
        u = controls[:, 0]
        w = disturbances[:, 0] if disturbances.shape[-1] else np.zeros(len(states))
        accel = (self.gravity / self.length) * np.sin(theta) - self.damping * omega + u / self.inertia
        next_theta = theta + self.dt * omega
        next_omega = omega + self.dt * accel + w
        return np.stack([next_theta, next_omega], axis=1)
