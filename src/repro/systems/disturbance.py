"""External-disturbance models ``omega(t)``.

The paper's plants experience a bounded external disturbance sampled at every
step.  Only a uniform box disturbance (used by the oscillator) and the
trivial zero disturbance are required, but the interface is open-ended so
verification code can ask for the bounding box of whatever model is plugged
in.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

from repro.systems.sets import Box
from repro.utils.seeding import RngLike, get_rng


class DisturbanceModel:
    """Interface: produce a disturbance vector per step and report its bound."""

    dimension: int = 1

    def sample(self, rng: RngLike = None) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def sample_batch(self, rng: RngLike = None, count: int = 1) -> np.ndarray:
        """Sample ``count`` independent disturbances, shape ``(count, dim)``.

        The default loops over :meth:`sample`; concrete models override it
        with a single vectorised draw so the batched rollout engine consumes
        the generator stream identically to ``count`` scalar draws.
        """

        generator = get_rng(rng)
        return np.stack([self.sample(generator) for _ in range(count)], axis=0)

    def bound(self) -> Box:  # pragma: no cover - abstract
        raise NotImplementedError


class NoDisturbance(DisturbanceModel):
    """Always-zero disturbance (used by the 3-D system and cartpole)."""

    def __init__(self, dimension: int = 1):
        if dimension < 1:
            raise ValueError("dimension must be positive")
        self.dimension = dimension

    def sample(self, rng: RngLike = None) -> np.ndarray:
        return np.zeros(self.dimension)

    def sample_batch(self, rng: RngLike = None, count: int = 1) -> np.ndarray:
        return np.zeros((count, self.dimension))

    def bound(self) -> Box:
        return Box(np.zeros(self.dimension), np.zeros(self.dimension))


class UniformDisturbance(DisturbanceModel):
    """Uniformly-distributed disturbance on a symmetric or general box."""

    def __init__(self, low: Union[float, Sequence[float]], high: Optional[Union[float, Sequence[float]]] = None):
        if high is None:
            box = Box.symmetric(np.abs(np.atleast_1d(np.asarray(low, dtype=np.float64))))
        else:
            box = Box(low, high)
        self._box = box
        self.dimension = box.dimension

    def sample(self, rng: RngLike = None) -> np.ndarray:
        return self._box.sample(get_rng(rng))

    def sample_batch(self, rng: RngLike = None, count: int = 1) -> np.ndarray:
        return self._box.sample(get_rng(rng), count=count)

    def bound(self) -> Box:
        return self._box
