"""Axis-aligned box sets.

The paper constrains the safe region ``X``, initial set ``X0``, control bound
``U``, disturbance bound ``Omega`` and perturbation bound ``Delta`` by
"pre-defined functions, such as boxes".  All the test systems use boxes, so a
single :class:`Box` class covers every set in the reproduction (including the
partitions used by the Bernstein-polynomial verifier).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.utils.seeding import RngLike, get_rng


class Box:
    """An axis-aligned hyper-rectangle ``[low, high]`` in R^n."""

    def __init__(self, low: Union[float, Sequence[float]], high: Union[float, Sequence[float]]):
        low_arr = np.atleast_1d(np.asarray(low, dtype=np.float64))
        high_arr = np.atleast_1d(np.asarray(high, dtype=np.float64))
        if low_arr.shape != high_arr.shape:
            raise ValueError("low and high must have the same shape")
        if np.any(high_arr < low_arr):
            raise ValueError("expected low <= high elementwise")
        self.low = low_arr
        self.high = high_arr

    # -- constructors -------------------------------------------------------
    @classmethod
    def symmetric(cls, half_width: Union[float, Sequence[float]], dimension: Optional[int] = None) -> "Box":
        """Box centred at the origin with the given half width per dimension."""

        half = np.asarray(half_width, dtype=np.float64)
        if half.ndim == 0:
            if dimension is None:
                raise ValueError("dimension is required for a scalar half width")
            half = np.full(dimension, float(half))
        return cls(-half, half)

    @classmethod
    def from_intervals(cls, intervals: Iterable[Tuple[float, float]]) -> "Box":
        intervals = list(intervals)
        return cls([lo for lo, _ in intervals], [hi for _, hi in intervals])

    # -- basic properties ----------------------------------------------------
    @property
    def dimension(self) -> int:
        return int(self.low.size)

    @property
    def center(self) -> np.ndarray:
        return (self.low + self.high) / 2.0

    @property
    def widths(self) -> np.ndarray:
        return self.high - self.low

    def volume(self) -> float:
        return float(np.prod(self.widths))

    def radius(self) -> float:
        """Half of the largest side length."""

        return float(np.max(self.widths) / 2.0)

    # -- membership and geometry ----------------------------------------------
    def contains(self, point: Sequence[float], tolerance: float = 0.0) -> bool:
        point = np.asarray(point, dtype=np.float64)
        return bool(np.all(point >= self.low - tolerance) and np.all(point <= self.high + tolerance))

    def contains_batch(self, points: Sequence[Sequence[float]], tolerance: float = 0.0) -> np.ndarray:
        """Vectorised membership test for a ``(N, dim)`` batch of points.

        Returns a boolean mask of shape ``(N,)``; row ``i`` is ``True`` when
        ``points[i]`` lies inside the box (within ``tolerance``).
        """

        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return np.all(
            (points >= self.low - tolerance) & (points <= self.high + tolerance), axis=-1
        )

    def contains_box(self, other: "Box", tolerance: float = 0.0) -> bool:
        return bool(
            np.all(other.low >= self.low - tolerance) and np.all(other.high <= self.high + tolerance)
        )

    def intersects(self, other: "Box") -> bool:
        return bool(np.all(self.low <= other.high) and np.all(other.low <= self.high))

    def clip(self, point: Sequence[float]) -> np.ndarray:
        return np.clip(np.asarray(point, dtype=np.float64), self.low, self.high)

    def expand(self, margin: Union[float, Sequence[float]]) -> "Box":
        """Minkowski sum with a symmetric box of the given margin."""

        margin = np.asarray(margin, dtype=np.float64)
        return Box(self.low - margin, self.high + margin)

    def scale(self, factor: float) -> "Box":
        """Scale the box about its centre."""

        center = self.center
        half = self.widths / 2.0 * factor
        return Box(center - half, center + half)

    def intersection(self, other: "Box") -> Optional["Box"]:
        low = np.maximum(self.low, other.low)
        high = np.minimum(self.high, other.high)
        if np.any(high < low):
            return None
        return Box(low, high)

    def union_bound(self, other: "Box") -> "Box":
        """Smallest box containing both boxes."""

        return Box(np.minimum(self.low, other.low), np.maximum(self.high, other.high))

    # -- sampling and subdivision ----------------------------------------------
    def sample(self, rng: RngLike = None, count: Optional[int] = None) -> np.ndarray:
        """Sample uniformly; returns shape ``(dim,)`` or ``(count, dim)``."""

        generator = get_rng(rng)
        if count is None:
            return generator.uniform(self.low, self.high)
        return generator.uniform(self.low, self.high, size=(count, self.dimension))

    def grid(self, points_per_dim: int) -> np.ndarray:
        """A regular grid of points covering the box, shape ``(N, dim)``."""

        if points_per_dim < 1:
            raise ValueError("points_per_dim must be at least 1")
        axes = [np.linspace(lo, hi, points_per_dim) for lo, hi in zip(self.low, self.high)]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.stack([m.reshape(-1) for m in mesh], axis=-1)

    def corners(self) -> np.ndarray:
        """All ``2^dim`` corner points, shape ``(2^dim, dim)``."""

        dim = self.dimension
        corners = np.zeros((2**dim, dim))
        for index in range(2**dim):
            for axis in range(dim):
                corners[index, axis] = self.high[axis] if (index >> axis) & 1 else self.low[axis]
        return corners

    def split(self, axis: Optional[int] = None) -> Tuple["Box", "Box"]:
        """Bisect along ``axis`` (default: the widest axis)."""

        if axis is None:
            axis = int(np.argmax(self.widths))
        middle = (self.low[axis] + self.high[axis]) / 2.0
        low_high = self.high.copy()
        low_high[axis] = middle
        high_low = self.low.copy()
        high_low[axis] = middle
        return Box(self.low, low_high), Box(high_low, self.high)

    def subdivide(self, per_dim: int) -> List["Box"]:
        """Uniformly partition into ``per_dim**dim`` sub-boxes."""

        if per_dim < 1:
            raise ValueError("per_dim must be at least 1")
        edges = [np.linspace(lo, hi, per_dim + 1) for lo, hi in zip(self.low, self.high)]
        boxes: List[Box] = []
        indices = np.stack(np.meshgrid(*[np.arange(per_dim)] * self.dimension, indexing="ij"), axis=-1).reshape(
            -1, self.dimension
        )
        for index in indices:
            low = np.array([edges[axis][index[axis]] for axis in range(self.dimension)])
            high = np.array([edges[axis][index[axis] + 1] for axis in range(self.dimension)])
            boxes.append(Box(low, high))
        return boxes

    # -- dunder helpers ----------------------------------------------------------
    def __iter__(self) -> Iterator[Tuple[float, float]]:
        return iter(zip(self.low.tolist(), self.high.tolist()))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return bool(np.allclose(self.low, other.low) and np.allclose(self.high, other.high))

    def __repr__(self) -> str:
        intervals = ", ".join(f"[{lo:.4g}, {hi:.4g}]" for lo, hi in self)
        return f"Box({intervals})"
