"""Closed-loop trajectory simulation and the paper's Monte-Carlo metrics.

The robustness (safe control rate) and energy metrics of Section II are
estimated exactly the way the paper does it: sample initial states from
``X0``, roll the closed loop forward for ``T`` steps, check whether every
visited state stays inside ``X`` and accumulate the 1-norm of the applied
control.  State perturbations (attacks or measurement noise) are injected by
an optional callable so the same rollout code serves the clean, noisy and
attacked evaluations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.systems.base import ControlSystem
from repro.utils.seeding import RngLike, get_rng

#: A controller maps the observed state to a (possibly unclipped) control.
ControllerFn = Callable[[np.ndarray], np.ndarray]

#: A perturbation maps the true state to the observed (perturbed) state.
PerturbationFn = Callable[[np.ndarray, np.random.Generator], np.ndarray]


@dataclass
class Trajectory:
    """One closed-loop rollout: states, applied controls and safety flags."""

    states: np.ndarray
    controls: np.ndarray
    safe: bool
    steps: int
    energy: float
    violation_step: Optional[int] = None
    observed_states: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self.steps


def rollout(
    system: ControlSystem,
    controller: ControllerFn,
    initial_state: Sequence[float],
    horizon: Optional[int] = None,
    perturbation: Optional[PerturbationFn] = None,
    rng: RngLike = None,
    stop_on_violation: bool = True,
) -> Trajectory:
    """Simulate the closed loop from ``initial_state`` for ``horizon`` steps.

    Parameters
    ----------
    system:
        The plant to control.
    controller:
        Callable mapping the *observed* state to a control command; the plant
        clips the command to its control bound before applying it.
    initial_state:
        Starting state, normally sampled from ``system.initial_set``.
    horizon:
        Number of control steps; defaults to ``system.horizon`` (the paper's
        ``T``).
    perturbation:
        Optional attack/noise model applied to the state *before* it is shown
        to the controller (the plant itself always evolves from the true
        state), matching the paper's threat model where only the measurement
        is perturbed.
    stop_on_violation:
        When ``True`` (the default and what the metrics use) the rollout stops
        at the first unsafe state.
    """

    generator = get_rng(rng)
    horizon = int(horizon) if horizon is not None else system.horizon
    state = np.asarray(initial_state, dtype=np.float64).copy()

    states = [state.copy()]
    observed = [state.copy()]
    controls: List[np.ndarray] = []
    safe = system.is_safe(state)
    violation_step: Optional[int] = None if safe else 0
    energy = 0.0

    if safe or not stop_on_violation:
        for step in range(horizon):
            observation = state
            if perturbation is not None:
                observation = np.asarray(perturbation(state.copy(), generator), dtype=np.float64)
            observed.append(observation.copy())
            command = np.atleast_1d(np.asarray(controller(observation), dtype=np.float64))
            applied = system.clip_control(command)
            controls.append(applied.copy())
            energy += float(np.sum(np.abs(applied)))
            state = system.step(state, applied, rng=generator)
            states.append(state.copy())
            if not system.is_safe(state):
                safe = False
                if violation_step is None:
                    violation_step = step + 1
                if stop_on_violation:
                    break

    return Trajectory(
        states=np.asarray(states),
        controls=np.asarray(controls) if controls else np.zeros((0, system.control_dim)),
        safe=safe,
        steps=len(controls),
        energy=energy,
        violation_step=violation_step,
        observed_states=np.asarray(observed),
    )


def sample_initial_states(system: ControlSystem, count: int, rng: RngLike = None) -> np.ndarray:
    """Draw ``count`` initial states uniformly from ``X0``."""

    if count <= 0:
        raise ValueError("count must be positive")
    return system.initial_set.sample(get_rng(rng), count=count)


@dataclass
class EvaluationResult:
    """Aggregate of many rollouts: the paper's Sr and e metrics."""

    safe_rate: float
    mean_energy: float
    num_trajectories: int
    num_safe: int
    energies: List[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "safe_rate": self.safe_rate,
            "mean_energy": self.mean_energy,
            "num_trajectories": self.num_trajectories,
            "num_safe": self.num_safe,
        }


def evaluate_rollouts(
    system: ControlSystem,
    controller: ControllerFn,
    initial_states: np.ndarray,
    perturbation: Optional[PerturbationFn] = None,
    horizon: Optional[int] = None,
    rng: RngLike = None,
) -> EvaluationResult:
    """Roll out from every row of ``initial_states`` and aggregate Sr and e.

    Following Property 2 of the paper, the energy average is taken over the
    *safe* trajectories only (the safe initial state set ``X'``); if no
    trajectory is safe the mean energy is reported as ``inf``.
    """

    generator = get_rng(rng)
    initial_states = np.atleast_2d(np.asarray(initial_states, dtype=np.float64))
    num_safe = 0
    safe_energies: List[float] = []
    for initial_state in initial_states:
        trajectory = rollout(
            system,
            controller,
            initial_state,
            horizon=horizon,
            perturbation=perturbation,
            rng=generator,
        )
        if trajectory.safe:
            num_safe += 1
            safe_energies.append(trajectory.energy)
    total = len(initial_states)
    mean_energy = float(np.mean(safe_energies)) if safe_energies else float("inf")
    return EvaluationResult(
        safe_rate=num_safe / total,
        mean_energy=mean_energy,
        num_trajectories=total,
        num_safe=num_safe,
        energies=safe_energies,
    )


def safe_control_rate(
    system: ControlSystem,
    controller: ControllerFn,
    samples: int = 500,
    perturbation: Optional[PerturbationFn] = None,
    horizon: Optional[int] = None,
    rng: RngLike = None,
) -> float:
    """Monte-Carlo estimate of the safe control rate Sr (Property 1)."""

    generator = get_rng(rng)
    initial_states = sample_initial_states(system, samples, rng=generator)
    result = evaluate_rollouts(
        system, controller, initial_states, perturbation=perturbation, horizon=horizon, rng=generator
    )
    return result.safe_rate


def control_energy(
    system: ControlSystem,
    controller: ControllerFn,
    samples: int = 500,
    perturbation: Optional[PerturbationFn] = None,
    horizon: Optional[int] = None,
    rng: RngLike = None,
) -> float:
    """Monte-Carlo estimate of the control energy e (Property 2)."""

    generator = get_rng(rng)
    initial_states = sample_initial_states(system, samples, rng=generator)
    result = evaluate_rollouts(
        system, controller, initial_states, perturbation=perturbation, horizon=horizon, rng=generator
    )
    return result.mean_energy
