"""Closed-loop trajectory simulation and the paper's Monte-Carlo metrics.

The robustness (safe control rate) and energy metrics of Section II are
Monte-Carlo estimates: sample initial states from ``X0``, roll the closed
loop forward for ``T`` steps, check whether every visited state stays inside
``X`` and accumulate the 1-norm of the applied control.  Two engines produce
those rollouts:

* :func:`rollout_batch` -- the vectorised engine.  It advances an
  ``(N, state_dim)`` batch of trajectories in lockstep, one NumPy array
  operation per step, masking out trajectories that have already violated
  safety.  All Monte-Carlo metrics (:func:`evaluate_rollouts`,
  :func:`safe_control_rate`, :func:`control_energy` and everything in
  :mod:`repro.metrics`) run on this engine.
* :func:`rollout` -- the scalar engine, now a thin ``N = 1`` wrapper around
  :func:`rollout_batch`.  With the same seed it reproduces the historical
  per-trajectory results exactly (state for state, control for control),
  which the batch equivalence tests assert.

Threat model (matching Section II of the paper): the perturbation ``delta``
is applied to the *measurement only*.  At every step the controller observes
``s(t) + delta(t)`` (bounded attack or noise), but the plant always evolves
from the true state ``s(t)``.  Perturbations are injected through an optional
callable so the same rollout code serves the clean, noisy and attacked
evaluations; batched perturbations (``perturb_batch``) are used when the
callable provides them, with a per-row fallback otherwise.

``stop_on_violation`` semantics: when ``True`` (the default, and what every
metric uses) a trajectory stops at the *first* unsafe state -- no further
controls are applied, no further energy accrues, and in the batch engine the
trajectory is masked out of all subsequent steps.  When ``False`` the rollout
always runs the full horizon; ``safe`` still reports whether any visited
state (including the initial one) left ``X`` and ``violation_step`` records
the first offence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.systems.base import ControlSystem
from repro.utils.dtypes import resolve_training_dtype
from repro.utils.seeding import RngLike, get_rng

#: A controller maps the observed state to a (possibly unclipped) control.
#: Controllers may additionally expose ``batch_control(states) -> controls``
#: (mapping ``(N, state_dim)`` to ``(N, control_dim)``), which the batched
#: engine uses when present instead of looping over rows.
ControllerFn = Callable[[np.ndarray], np.ndarray]

#: A perturbation maps the true state to the observed (perturbed) state.
#: Perturbations may additionally expose ``perturb_batch(states, rng)``
#: (mapping ``(N, state_dim)`` to ``(N, state_dim)``) for batched rollouts.
PerturbationFn = Callable[[np.ndarray, np.random.Generator], np.ndarray]


@dataclass
class Trajectory:
    """One closed-loop rollout.

    Attributes
    ----------
    states:
        True plant states, shape ``(steps + 1, state_dim)``: the initial
        state followed by one state per applied control.  When the rollout
        stopped on a violation the last row is the first unsafe state.
    controls:
        Applied (clipped) controls, shape ``(steps, control_dim)``.
    safe:
        ``True`` iff every visited state (initial state included) stayed
        inside the safe region ``X``.
    steps:
        Number of controls applied before the rollout ended (``horizon``
        for a safe rollout, fewer when it stopped on a violation).
    energy:
        Accumulated 1-norm of the applied controls, Eq. (3)'s integrand.
    violation_step:
        Index of the first unsafe state (0 = unsafe initial state), or
        ``None`` when the trajectory never left ``X``.
    observed_states:
        What the controller saw, shape ``(steps + 1, state_dim)``: the
        initial state followed by the (possibly perturbed) observation used
        at each step.  Row 0 is always the true initial state.
    """

    states: np.ndarray
    controls: np.ndarray
    safe: bool
    steps: int
    energy: float
    violation_step: Optional[int] = None
    observed_states: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return self.steps


@dataclass
class TrajectoryBatch:
    """A batch of ``N`` closed-loop rollouts advanced in lockstep.

    Time-major per-trajectory arrays are padded to the longest rollout in
    the batch (``T = max(steps)``); rows that stopped early are frozen at
    their last value (states/observations) or zero (controls) beyond their
    own ``steps``.  Use :meth:`trajectory` to slice out one member as a
    scalar :class:`Trajectory`.
    """

    #: True states, shape ``(N, T + 1, state_dim)``.
    states: np.ndarray
    #: Applied controls, shape ``(N, T, control_dim)``.
    controls: np.ndarray
    #: Per-trajectory safety flag, shape ``(N,)`` bool.
    safe: np.ndarray
    #: Number of controls applied per trajectory, shape ``(N,)`` int.
    steps: np.ndarray
    #: Accumulated control energy per trajectory, shape ``(N,)``.
    energy: np.ndarray
    #: First unsafe step per trajectory (-1 = never unsafe), shape ``(N,)`` int.
    violation_step: np.ndarray
    #: Observed states, shape ``(N, T + 1, state_dim)``.
    observed_states: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self.safe)

    @property
    def num_safe(self) -> int:
        return int(np.count_nonzero(self.safe))

    @property
    def safe_rate(self) -> float:
        return self.num_safe / len(self)

    def safe_energies(self) -> np.ndarray:
        """Energies of the safe trajectories, in batch order."""

        return self.energy[self.safe]

    def trajectory(self, index: int) -> Trajectory:
        """Extract member ``index`` as a scalar :class:`Trajectory`."""

        count = int(self.steps[index])
        violation = int(self.violation_step[index])
        if self.states.shape[1] < count + 1:
            raise ValueError(
                "per-step histories were not recorded (rollout_batch(record_states=False))"
            )
        return Trajectory(
            states=self.states[index, : count + 1].copy(),
            controls=self.controls[index, :count].copy(),
            safe=bool(self.safe[index]),
            steps=count,
            energy=float(self.energy[index]),
            violation_step=None if violation < 0 else violation,
            observed_states=(
                self.observed_states[index, : count + 1].copy()
                if self.observed_states is not None
                else None
            ),
        )


def batch_controls(controller: ControllerFn, states: np.ndarray) -> np.ndarray:
    """Evaluate a controller on an ``(N, state_dim)`` batch of observations.

    Uses the controller's ``batch_control`` method when available and falls
    back to looping over rows; always returns shape ``(N, control_dim)``.
    """

    batch = getattr(controller, "batch_control", None)
    if batch is not None:
        return np.atleast_2d(np.asarray(batch(states), dtype=np.float64))
    return np.stack(
        [np.atleast_1d(np.asarray(controller(state), dtype=np.float64)) for state in states],
        axis=0,
    )


def weighted_expert_controls(
    experts: Sequence[ControllerFn], weights: np.ndarray, states: np.ndarray, control_dim: int
) -> np.ndarray:
    """Eq. (4)'s weighted expert sum over an ``(N, state_dim)`` batch.

    ``weights`` has shape ``(N, len(experts))``; the result is the unclipped
    ``(N, control_dim)`` mixed command ``sum_i w_i(s) kappa_i(s)``.  This is
    the single batched kernel behind both the vectorized mixing environment
    (:class:`repro.rl.env.VecMixingEnv`) and the mixed-controller teacher
    (:meth:`repro.core.mixing.MixedController.batch_control`), so the
    training MDP and the distillation teacher can never diverge.
    """

    states = np.atleast_2d(np.asarray(states, dtype=np.float64))
    weights = np.atleast_2d(np.asarray(weights, dtype=np.float64))
    controls = np.zeros((len(states), int(control_dim)))
    for index, expert in enumerate(experts):
        controls = controls + weights[:, index : index + 1] * batch_controls(expert, states)
    return controls


def _perturbation_batch(
    perturbation: PerturbationFn, states: np.ndarray, generator: np.random.Generator
) -> np.ndarray:
    """Perturb an ``(N, state_dim)`` batch of true states into observations."""

    batch = getattr(perturbation, "perturb_batch", None)
    if batch is not None:
        return np.atleast_2d(np.asarray(batch(states, generator), dtype=np.float64))
    return np.stack(
        [
            np.asarray(perturbation(state.copy(), generator), dtype=np.float64)
            for state in states
        ],
        axis=0,
    )


def rollout_batch(
    system: ControlSystem,
    controller: ControllerFn,
    initial_states: Sequence[Sequence[float]],
    horizon: Optional[int] = None,
    perturbation: Optional[PerturbationFn] = None,
    rng: RngLike = None,
    stop_on_violation: bool = True,
    record_states: bool = True,
    dtype: "str | np.dtype" = "float64",
) -> TrajectoryBatch:
    """Simulate ``N`` closed loops in lockstep from the rows of ``initial_states``.

    Each step performs one batched perturbation, one batched controller
    evaluation, one batched control clip and one batched plant update for
    every still-active trajectory; with ``stop_on_violation`` (the default)
    trajectories leave the active set at their first unsafe state, so a batch
    whose members all fail early terminates early too.

    While every trajectory is still active the loop runs a *fast path* with
    no active-set index: no ``flatnonzero``, no fancy-index gather of the
    current states and direct (instead of freeze-then-overwrite) history
    writes.  The arithmetic is identical, so results match the masked path
    value for value; the masked path takes over at the first violation.

    With ``N = 1`` this consumes the random stream exactly like the
    historical scalar :func:`rollout` (perturbation draw, then disturbance
    draw, each step), so seeded single-trajectory results are preserved
    bit for bit.  For ``N > 1`` the stream is consumed step-major (all
    members' draws at step ``t`` before any draw at ``t + 1``) instead of
    trajectory-major, so individual trajectories differ from sequential
    scalar rollouts on stochastic plants -- the Monte-Carlo estimates are
    statistically equivalent.

    Parameters
    ----------
    system:
        The plant to control.
    controller:
        Maps the observed state to a control command; ``batch_control`` is
        used when available.  Stateful controllers (e.g. PID) keep a single
        internal state, which lockstep evaluation would interleave across
        batch members -- roll those out one by one via :func:`rollout`.
    initial_states:
        Array-like of shape ``(N, state_dim)``.
    horizon:
        Number of control steps; defaults to ``system.horizon`` (the paper's
        ``T``).
    perturbation:
        Optional attack/noise model applied to the measurement only (see the
        module docstring for the threat model); ``perturb_batch`` is used
        when available.
    stop_on_violation:
        Stop each trajectory at its first unsafe state (see module docstring).
    record_states:
        When ``False`` the per-step state/control/observation histories are
        not stored (the returned arrays are empty); the scalar summaries
        (``safe``, ``steps``, ``energy``, ``violation_step``) are unaffected.
        Metric sweeps use this to avoid allocating ``(N, T, dim)`` arrays.
    dtype:
        Precision of the state/observation/control arrays, ``"float64"``
        (the default, bit-identical to the historical engine) or
        ``"float32"`` -- a training-side option that halves history memory
        traffic (controllers and plants still compute through their own
        precision; values are cast at each step boundary).  Verification
        paths reject float32, see :mod:`repro.utils.dtypes`.
    """

    generator = get_rng(rng)
    dtype = resolve_training_dtype(dtype)
    native = dtype == np.float64
    horizon = int(horizon) if horizon is not None else system.horizon
    states = np.atleast_2d(np.asarray(initial_states, dtype=np.float64)).copy()
    if states.shape[-1] != system.state_dim:
        raise ValueError(
            f"initial_states have shape {states.shape}, expected (N, {system.state_dim})"
        )
    if not native:
        states = states.astype(dtype)
    count = len(states)

    initially_safe = system.is_safe_batch(states)
    safe = initially_safe.copy()
    violation_step = np.where(initially_safe, -1, 0)
    energy = np.zeros(count)
    steps = np.zeros(count, dtype=int)
    active = initially_safe.copy() if stop_on_violation else np.ones(count, dtype=bool)
    all_active = bool(active.all())

    if record_states:
        states_history = np.empty((count, horizon + 1, system.state_dim), dtype=dtype)
        states_history[:, 0] = states
        observed_history = np.empty((count, horizon + 1, system.state_dim), dtype=dtype)
        observed_history[:, 0] = states
        controls_history = np.zeros((count, horizon, system.control_dim), dtype=dtype)

    executed = 0
    for step in range(horizon):
        if all_active:
            index = None
            current = states
        else:
            index = np.flatnonzero(active)
            if index.size == 0:
                break
            current = states[index]
        executed = step + 1

        observations = current
        if perturbation is not None:
            observations = _perturbation_batch(perturbation, current, generator)
            if not native:
                observations = observations.astype(dtype, copy=False)
        commands = batch_controls(controller, observations)
        applied = system.clip_control_batch(commands)
        if not native:
            applied = np.asarray(applied, dtype=dtype)

        disturbances = system.disturbance.sample_batch(generator, count=len(current))
        next_states = system.dynamics_batch(current, applied, disturbances)
        if not native:
            next_states = np.asarray(next_states, dtype=dtype)

        if index is None:
            energy += np.sum(np.abs(applied), axis=1)
            steps += 1
            # Rebinding (not mutating) keeps this step's ``observations`` --
            # which may alias the previous ``states`` array -- intact until
            # the history write below.
            states = next_states
        else:
            energy[index] += np.sum(np.abs(applied), axis=1)
            steps[index] += 1
            states[index] = next_states

        if record_states:
            if index is None:
                states_history[:, step + 1] = next_states
                observed_history[:, step + 1] = observations
                controls_history[:, step] = applied
            else:
                # Frozen rows carry their previous value forward so padded
                # slices stay well-defined; trajectory() trims them away.
                states_history[:, step + 1] = states_history[:, step]
                states_history[index, step + 1] = next_states
                observed_history[:, step + 1] = observed_history[:, step]
                observed_history[index, step + 1] = observations
                controls_history[index, step] = applied

        now_safe = system.is_safe_batch(next_states)
        if index is None:
            if not now_safe.all():
                violated_mask = ~now_safe
                safe[violated_mask] = False
                violation_step[violated_mask & (violation_step < 0)] = step + 1
                if stop_on_violation:
                    active[violated_mask] = False
                    all_active = False
                    # The masked path mutates ``states`` by fancy index, so
                    # it needs an owned, writable array.
                    states = np.array(states)
        else:
            violated = index[~now_safe]
            if violated.size:
                safe[violated] = False
                fresh = violated[violation_step[violated] < 0]
                violation_step[fresh] = step + 1
                if stop_on_violation:
                    active[violated] = False

    if record_states:
        states_out = states_history[:, : executed + 1]
        observed_out = observed_history[:, : executed + 1]
        controls_out = controls_history[:, :executed]
    else:
        states_out = np.zeros((count, 0, system.state_dim))
        observed_out = np.zeros((count, 0, system.state_dim))
        controls_out = np.zeros((count, 0, system.control_dim))

    return TrajectoryBatch(
        states=states_out,
        controls=controls_out,
        safe=safe,
        steps=steps,
        energy=energy,
        violation_step=violation_step,
        observed_states=observed_out,
    )


def rollout(
    system: ControlSystem,
    controller: ControllerFn,
    initial_state: Sequence[float],
    horizon: Optional[int] = None,
    perturbation: Optional[PerturbationFn] = None,
    rng: RngLike = None,
    stop_on_violation: bool = True,
) -> Trajectory:
    """Simulate one closed loop from ``initial_state`` for ``horizon`` steps.

    A thin ``N = 1`` wrapper over :func:`rollout_batch`; the random stream
    consumption and the returned :class:`Trajectory` are identical to the
    historical scalar implementation for the same seed.  See
    :func:`rollout_batch` for the parameters and the module docstring for
    the threat model and the ``stop_on_violation`` semantics.
    """

    initial_state = np.asarray(initial_state, dtype=np.float64)
    batch = rollout_batch(
        system,
        controller,
        initial_state[None, :],
        horizon=horizon,
        perturbation=perturbation,
        rng=rng,
        stop_on_violation=stop_on_violation,
    )
    return batch.trajectory(0)


def sample_initial_states(system: ControlSystem, count: int, rng: RngLike = None) -> np.ndarray:
    """Draw ``count`` initial states uniformly from ``X0``."""

    if count <= 0:
        raise ValueError("count must be positive")
    return system.initial_set.sample(get_rng(rng), count=count)


@dataclass
class EvaluationResult:
    """Aggregate of many rollouts: the paper's Sr and e metrics."""

    safe_rate: float
    mean_energy: float
    num_trajectories: int
    num_safe: int
    energies: List[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "safe_rate": self.safe_rate,
            "mean_energy": self.mean_energy,
            "num_trajectories": self.num_trajectories,
            "num_safe": self.num_safe,
        }


def evaluate_rollouts(
    system: ControlSystem,
    controller: ControllerFn,
    initial_states: np.ndarray,
    perturbation: Optional[PerturbationFn] = None,
    horizon: Optional[int] = None,
    rng: RngLike = None,
    batch_size: Optional[int] = None,
) -> EvaluationResult:
    """Roll out from every row of ``initial_states`` and aggregate Sr and e.

    The rollouts run on the batched engine; ``batch_size`` caps how many
    trajectories advance in lockstep at once (``None`` runs the whole sample
    as a single batch, which is fastest; chunk when memory or perturbation
    cost per step matters).  Stateful perturbations exposing ``reset()``
    (e.g. the alternating FGSM attack's step counter) are reset before every
    chunk, so each trajectory sees the attack phase as a function of its own
    simulation time and the aggregate does not depend on ``batch_size``.

    Following Property 2 of the paper, the energy average is taken over the
    *safe* trajectories only (the safe initial state set ``X'``); if no
    trajectory is safe the mean energy is reported as ``inf``.
    """

    generator = get_rng(rng)
    initial_states = np.atleast_2d(np.asarray(initial_states, dtype=np.float64))
    total = len(initial_states)
    if batch_size is not None and batch_size <= 0:
        raise ValueError("batch_size must be positive (or None for one batch)")
    chunk = total if batch_size is None else min(batch_size, total)
    reset_perturbation = getattr(perturbation, "reset", None)

    num_safe = 0
    safe_energies: List[float] = []
    for start in range(0, total, chunk):
        if reset_perturbation is not None:
            reset_perturbation()
        batch = rollout_batch(
            system,
            controller,
            initial_states[start : start + chunk],
            horizon=horizon,
            perturbation=perturbation,
            rng=generator,
            record_states=False,
        )
        num_safe += batch.num_safe
        safe_energies.extend(float(value) for value in batch.safe_energies())

    mean_energy = float(np.mean(safe_energies)) if safe_energies else float("inf")
    return EvaluationResult(
        safe_rate=num_safe / total,
        mean_energy=mean_energy,
        num_trajectories=total,
        num_safe=num_safe,
        energies=safe_energies,
    )


def safe_control_rate(
    system: ControlSystem,
    controller: ControllerFn,
    samples: int = 500,
    perturbation: Optional[PerturbationFn] = None,
    horizon: Optional[int] = None,
    rng: RngLike = None,
    batch_size: Optional[int] = None,
) -> float:
    """Monte-Carlo estimate of the safe control rate Sr (Property 1)."""

    generator = get_rng(rng)
    initial_states = sample_initial_states(system, samples, rng=generator)
    result = evaluate_rollouts(
        system,
        controller,
        initial_states,
        perturbation=perturbation,
        horizon=horizon,
        rng=generator,
        batch_size=batch_size,
    )
    return result.safe_rate


def control_energy(
    system: ControlSystem,
    controller: ControllerFn,
    samples: int = 500,
    perturbation: Optional[PerturbationFn] = None,
    horizon: Optional[int] = None,
    rng: RngLike = None,
    batch_size: Optional[int] = None,
) -> float:
    """Monte-Carlo estimate of the control energy e (Property 2)."""

    generator = get_rng(rng)
    initial_states = sample_initial_states(system, samples, rng=generator)
    result = evaluate_rollouts(
        system,
        controller,
        initial_states,
        perturbation=perturbation,
        horizon=horizon,
        rng=generator,
        batch_size=batch_size,
    )
    return result.mean_energy
