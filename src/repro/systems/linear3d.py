"""The three-dimensional polynomial system (Section IV, system 2).

Continuous-time dynamics (example 15 of Sassi et al. 2017)::

    x_dot = y + 0.5 * z^2
    y_dot = z
    z_dot = u

discretised with forward Euler at ``tau = 0.05``; ``X = X0 = [-0.5, 0.5]^3``,
``u in [-10, 10]``, ``T = 100``.  The paper applies no external disturbance
to this system.
"""

from __future__ import annotations

import numpy as np

from repro.systems.base import ControlSystem
from repro.systems.disturbance import NoDisturbance
from repro.systems.sets import Box


class ThreeDimensionalSystem(ControlSystem):
    """Euler-discretised 3-D polynomial system ``(x, y, z)`` with scalar input."""

    name = "3d"

    def __init__(
        self,
        dt: float = 0.05,
        horizon: int = 100,
        control_limit: float = 10.0,
        state_limit: float = 0.5,
    ):
        super().__init__(
            state_dim=3,
            control_dim=1,
            safe_region=Box.symmetric(state_limit, dimension=3),
            initial_set=Box.symmetric(state_limit, dimension=3),
            control_bound=Box.symmetric(control_limit, dimension=1),
            horizon=horizon,
            disturbance=NoDisturbance(3),
            dt=dt,
        )

    def dynamics(self, state: np.ndarray, control: np.ndarray, disturbance: np.ndarray) -> np.ndarray:
        x, y, z = state
        u = control[0]
        x_dot = y + 0.5 * z**2
        y_dot = z
        z_dot = u
        next_state = np.array([x + self.dt * x_dot, y + self.dt * y_dot, z + self.dt * z_dot])
        if disturbance.size == self.state_dim:
            next_state = next_state + disturbance
        return next_state

    def dynamics_batch(
        self, states: np.ndarray, controls: np.ndarray, disturbances: np.ndarray
    ) -> np.ndarray:
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        controls = np.atleast_2d(np.asarray(controls, dtype=np.float64))
        disturbances = np.atleast_2d(np.asarray(disturbances, dtype=np.float64))
        x, y, z = states[:, 0], states[:, 1], states[:, 2]
        u = controls[:, 0]
        x_dot = y + 0.5 * z**2
        y_dot = z
        z_dot = u
        next_states = np.stack(
            [x + self.dt * x_dot, y + self.dt * y_dot, z + self.dt * z_dot], axis=1
        )
        if disturbances.shape[-1] == self.state_dim:
            next_states = next_states + disturbances
        return next_states
