"""Adaptive cruise control plant (scenario catalog addition, not in the paper).

Three-state car-following model in error coordinates, Euler-discretised at
``tau = 0.1``::

    h(t+1) = h(t) + tau * v(t)                      # headway (gap) error
    v(t+1) = v(t) - tau * a(t) + w(t)               # relative velocity
    a(t+1) = a(t) + (tau / T_lag) * (u(t) - a(t))   # ego acceleration (lag)

``h`` is the deviation of the inter-vehicle gap from the desired headway,
``v = v_lead - v_ego`` the relative velocity, and ``a`` the ego
acceleration, which tracks the commanded acceleration ``u`` through a
first-order actuator lag ``T_lag``.  The lead vehicle's unmodelled
acceleration enters as the bounded disturbance ``w`` on the relative
velocity.  All dynamics are affine, so the natural interval extension used
by the verifier is exact and the LQR expert is built on the true model.

The safe region bounds the gap error to ``[-5, 5]`` m (leaving it on the
negative side models closing in on the lead vehicle), the relative velocity
to ``[-3, 3]`` m/s and the acceleration to ``[-3, 3]`` m/s^2; commanded
accelerations are limited to ``[-3, 3]`` m/s^2.
"""

from __future__ import annotations

import numpy as np

from repro.systems.base import ControlSystem
from repro.systems.disturbance import UniformDisturbance
from repro.systems.sets import Box


class AdaptiveCruiseControl(ControlSystem):
    """Gap-error car-following model with first-order acceleration lag."""

    name = "acc"

    def __init__(
        self,
        dt: float = 0.1,
        horizon: int = 120,
        control_limit: float = 3.0,
        gap_limit: float = 5.0,
        velocity_limit: float = 3.0,
        acceleration_limit: float = 3.0,
        initial_gap: float = 1.5,
        initial_velocity: float = 0.75,
        initial_acceleration: float = 0.5,
        lag: float = 0.5,
        disturbance_bound: float = 0.02,
    ):
        if lag <= 0:
            raise ValueError("the actuator lag must be positive")
        self.lag = float(lag)
        super().__init__(
            state_dim=3,
            control_dim=1,
            safe_region=Box(
                [-gap_limit, -velocity_limit, -acceleration_limit],
                [gap_limit, velocity_limit, acceleration_limit],
            ),
            initial_set=Box(
                [-initial_gap, -initial_velocity, -initial_acceleration],
                [initial_gap, initial_velocity, initial_acceleration],
            ),
            control_bound=Box.symmetric(control_limit, dimension=1),
            horizon=horizon,
            disturbance=UniformDisturbance(disturbance_bound),
            dt=dt,
        )

    def dynamics(self, state: np.ndarray, control: np.ndarray, disturbance: np.ndarray) -> np.ndarray:
        gap, velocity, acceleration = state
        u = control[0]
        w = disturbance[0] if disturbance.size else 0.0
        next_gap = gap + self.dt * velocity
        next_velocity = velocity - self.dt * acceleration + w
        next_acceleration = acceleration + (self.dt / self.lag) * (u - acceleration)
        return np.array([next_gap, next_velocity, next_acceleration])

    def dynamics_batch(
        self, states: np.ndarray, controls: np.ndarray, disturbances: np.ndarray
    ) -> np.ndarray:
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        controls = np.atleast_2d(np.asarray(controls, dtype=np.float64))
        disturbances = np.atleast_2d(np.asarray(disturbances, dtype=np.float64))
        gap = states[:, 0]
        velocity = states[:, 1]
        acceleration = states[:, 2]
        u = controls[:, 0]
        w = disturbances[:, 0] if disturbances.shape[-1] else np.zeros(len(states))
        next_gap = gap + self.dt * velocity
        next_velocity = velocity - self.dt * acceleration + w
        next_acceleration = acceleration + (self.dt / self.lag) * (u - acceleration)
        return np.stack([next_gap, next_velocity, next_acceleration], axis=1)
