"""Control-system substrate: plants, safe regions, and trajectory simulation.

This package replaces the OpenAI-gym environments used by the paper with
direct implementations of the three discrete-time nonlinear systems defined
in Section IV -- the Van der Pol oscillator, the 3-D polynomial system from
Sassi et al. (example 15), and the cartpole -- plus the catalog extensions
(inverted pendulum, adaptive cruise control).  Which plants exist, and how
:func:`make_system` resolves a name, is decided by the scenario registry
(:mod:`repro.scenarios`): registering a new scenario makes it available
here, to the expert factory, to the verifier and to the CLI at once.
"""

from repro.systems.sets import Box
from repro.systems.disturbance import NoDisturbance, UniformDisturbance
from repro.systems.base import ControlSystem
from repro.systems.vanderpol import VanDerPolOscillator
from repro.systems.linear3d import ThreeDimensionalSystem
from repro.systems.cartpole import CartPole
from repro.systems.pendulum import InvertedPendulum
from repro.systems.acc import AdaptiveCruiseControl
from repro.systems.simulation import (
    EvaluationResult,
    Trajectory,
    TrajectoryBatch,
    control_energy,
    evaluate_rollouts,
    rollout,
    rollout_batch,
    safe_control_rate,
    sample_initial_states,
)

__all__ = [
    "Box",
    "ControlSystem",
    "NoDisturbance",
    "UniformDisturbance",
    "VanDerPolOscillator",
    "ThreeDimensionalSystem",
    "CartPole",
    "InvertedPendulum",
    "AdaptiveCruiseControl",
    "Trajectory",
    "TrajectoryBatch",
    "EvaluationResult",
    "rollout",
    "rollout_batch",
    "evaluate_rollouts",
    "safe_control_rate",
    "control_energy",
    "sample_initial_states",
    "make_system",
]


def make_system(name: str, **kwargs) -> ControlSystem:
    """Instantiate a registered scenario's plant by name.

    Resolution goes through the scenario registry, so aliases
    (``"oscillator"``) and parameter-overridable variants
    (``"vanderpol?mu=1.5"``) work everywhere a system name is accepted;
    explicit keyword arguments win over variant overrides.
    """

    from repro.scenarios import make_scenario_system

    return make_scenario_system(name, **kwargs)
