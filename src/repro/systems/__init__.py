"""Control-system substrate: plants, safe regions, and trajectory simulation.

This package replaces the OpenAI-gym environments used by the paper with
direct implementations of the three discrete-time nonlinear systems defined
in Section IV: the Van der Pol oscillator, the 3-D polynomial system from
Sassi et al. (example 15), and the cartpole.
"""

from repro.systems.sets import Box
from repro.systems.disturbance import NoDisturbance, UniformDisturbance
from repro.systems.base import ControlSystem
from repro.systems.vanderpol import VanDerPolOscillator
from repro.systems.linear3d import ThreeDimensionalSystem
from repro.systems.cartpole import CartPole
from repro.systems.simulation import (
    EvaluationResult,
    Trajectory,
    TrajectoryBatch,
    control_energy,
    evaluate_rollouts,
    rollout,
    rollout_batch,
    safe_control_rate,
    sample_initial_states,
)

__all__ = [
    "Box",
    "ControlSystem",
    "NoDisturbance",
    "UniformDisturbance",
    "VanDerPolOscillator",
    "ThreeDimensionalSystem",
    "CartPole",
    "Trajectory",
    "TrajectoryBatch",
    "EvaluationResult",
    "rollout",
    "rollout_batch",
    "evaluate_rollouts",
    "safe_control_rate",
    "control_energy",
    "sample_initial_states",
    "make_system",
    "SYSTEM_REGISTRY",
]


SYSTEM_REGISTRY = {
    "vanderpol": VanDerPolOscillator,
    "oscillator": VanDerPolOscillator,
    "3d": ThreeDimensionalSystem,
    "three_dimensional": ThreeDimensionalSystem,
    "cartpole": CartPole,
}


def make_system(name: str, **kwargs) -> ControlSystem:
    """Instantiate one of the paper's three test systems by name."""

    key = name.lower()
    if key not in SYSTEM_REGISTRY:
        raise ValueError(f"unknown system {name!r}; choose from {sorted(set(SYSTEM_REGISTRY))}")
    return SYSTEM_REGISTRY[key](**kwargs)
