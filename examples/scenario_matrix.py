"""Scenario catalog demo: register a custom plant, then run the matrix.

Two things the scenario subsystem gives you, in one script:

1. **Registration** -- a damped double integrator is defined from scratch
   (plant + expert pair + interval inclusion function) and registered with
   one ``register_scenario`` call.  That single call makes it available to
   ``make_system``, ``make_default_experts``, the verifier's interval
   models, and the ``(scenario x controller x perturbation)`` matrix
   runner -- no framework edits.
2. **The matrix** -- ``run_scenario_matrix`` fans evaluation cells across
   the batched rollout engine for the custom plant plus two catalog
   scenarios and prints the per-cell table.

Run with ``python examples/scenario_matrix.py`` (add ``--train`` to also
distil and verify a student per scenario; slower but exercises the whole
train -> evaluate -> verify cell).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import register_scenario, run_scenario_matrix
from repro.experts import LinearStateFeedback
from repro.scenarios import ScenarioSpec, unregister_scenario
from repro.systems import Box, ControlSystem, NoDisturbance
from repro.verification.intervals import Interval


class DoubleIntegrator(ControlSystem):
    """Acceleration-controlled point mass with viscous damping."""

    name = "double-integrator"

    def __init__(self, dt: float = 0.05, horizon: int = 100, damping: float = 0.1):
        self.damping = float(damping)
        super().__init__(
            state_dim=2,
            control_dim=1,
            safe_region=Box.symmetric(2.0, dimension=2),
            initial_set=Box.symmetric(1.0, dimension=2),
            control_bound=Box.symmetric(5.0, dimension=1),
            horizon=horizon,
            disturbance=NoDisturbance(2),
            dt=dt,
        )

    def dynamics(self, state, control, disturbance):
        position, velocity = state
        u = control[0]
        next_position = position + self.dt * velocity
        next_velocity = velocity + self.dt * (u - self.damping * velocity)
        next_state = np.array([next_position, next_velocity])
        if disturbance.size == self.state_dim:
            next_state = next_state + disturbance
        return next_state

    def dynamics_batch(self, states, controls, disturbances):
        states = np.atleast_2d(np.asarray(states, dtype=np.float64))
        controls = np.atleast_2d(np.asarray(controls, dtype=np.float64))
        disturbances = np.atleast_2d(np.asarray(disturbances, dtype=np.float64))
        position, velocity = states[:, 0], states[:, 1]
        u = controls[:, 0]
        next_states = np.stack(
            [position + self.dt * velocity, velocity + self.dt * (u - self.damping * velocity)],
            axis=1,
        )
        if disturbances.shape[-1] == self.state_dim:
            next_states = next_states + disturbances
        return next_states


def double_integrator_experts(system):
    kappa1 = LinearStateFeedback([[3.0, 3.5]], name="kappa1")  # stiff PD
    kappa2 = LinearStateFeedback([[0.8, 1.2]], name="kappa2")  # gentle PD
    return [kappa1, kappa2]


def double_integrator_interval(system, state, control, disturbance):
    position, velocity = state[..., 0], state[..., 1]
    u = control[..., 0]
    next_position = position + velocity.scale(system.dt)
    next_velocity = velocity.scale(1.0 - system.dt * system.damping) + u.scale(system.dt)
    result = Interval(
        np.stack([next_position.lower, next_velocity.lower], axis=-1),
        np.stack([next_position.upper, next_velocity.upper], axis=-1),
    )
    if disturbance.lower.shape[-1] == 2:
        result = result + disturbance
    return result


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--train", action="store_true", help="train + verify a student per scenario")
    parser.add_argument("--samples", type=int, default=16, help="rollouts per evaluation cell")
    parser.add_argument("--csv", default=None, help="optional path for the per-cell CSV")
    args = parser.parse_args()

    spec = ScenarioSpec(
        name="double-integrator",
        description="damped double integrator (registered by examples/scenario_matrix.py)",
        system_factory=DoubleIntegrator,
        expert_factory=double_integrator_experts,
        interval_dynamics=double_integrator_interval,
        train_budget=dict(mixing_epochs=2, mixing_steps=256, distill_epochs=25, dataset_size=400),
        verify_budget=dict(target_error=0.8, degree=2, max_partitions=256, reach_steps=5),
    )
    register_scenario(spec)
    print(f"registered scenario {spec.name!r}\n")

    try:
        report = run_scenario_matrix(
            scenarios=["double-integrator", "vanderpol", "pendulum"],
            samples=args.samples,
            train=args.train,
            verify=args.train,
            budget_scale=0.25,
            progress=print,
        )
    finally:
        unregister_scenario("double-integrator")

    print()
    print(report.table())
    if args.csv:
        path = report.to_csv(args.csv)
        print(f"wrote per-cell records to {path}")


if __name__ == "__main__":
    main()
