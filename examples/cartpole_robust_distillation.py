"""Cartpole: distil two complementary experts into one balanced controller.

The cartpole experts have complementary weaknesses -- the LQR expert
(kappa1) watches both the cart and the pole but spends energy; the angle-only
expert (kappa2) is frugal but lets the cart drift.  The example shows how the
adaptive mixing policy trades them off and how the robust distillation step
produces a single compact network that balances the pole from every sampled
initial state, comparing its size against the mixed design it replaces.
"""

from __future__ import annotations

import argparse

from repro import (
    CocktailConfig,
    CocktailPipeline,
    DistillationConfig,
    MixingConfig,
    evaluate_controllers,
    make_default_experts,
    make_system,
    set_global_seed,
)
from repro.metrics.evaluation import metrics_to_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--samples", type=int, default=150)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    set_global_seed(args.seed)
    system = make_system("cartpole")
    experts = make_default_experts(system)

    if args.fast:
        mixing = MixingConfig(epochs=3, steps_per_epoch=512, seed=args.seed)
        distillation = DistillationConfig(
            epochs=80, dataset_size=1500, hidden_sizes=(32, 32), trajectory_fraction=0.7, seed=args.seed
        )
    else:
        mixing = MixingConfig(epochs=12, steps_per_epoch=2048, seed=args.seed)
        distillation = DistillationConfig(
            epochs=200, dataset_size=4000, hidden_sizes=(32, 32), trajectory_fraction=0.7, seed=args.seed
        )
    config = CocktailConfig(mixing=mixing, distillation=distillation, seed=args.seed)

    result = CocktailPipeline(system, experts, config).run()

    mixed_size = result.mixed_controller.num_parameters()
    student_size = result.student.network.num_parameters()
    print("storage argument for distillation (Section III-B):")
    print(f"  mixed design A_W parameters : {mixed_size}")
    print(f"  student kappa* parameters   : {student_size}")
    print(f"  compression                 : {mixed_size / student_size:.1f}x")
    print()

    metrics = evaluate_controllers(system, result.controllers(), samples=args.samples, seed=args.seed)
    print(metrics_to_table("Cartpole summary", metrics))


if __name__ == "__main__":
    main()
