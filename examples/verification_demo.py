"""Verification demo: invariant set and reachability of distilled controllers.

Reproduces the mechanics behind Figs. 3 and 4 of the paper on the Van der
Pol oscillator:

1. distil a robust student ``kappa*`` and a direct student ``kappa_D`` from
   the same mixed teacher;
2. over-approximate each with a partitioned Bernstein surrogate;
3. compute the control invariant set (Fig. 3) and a bounded-horizon
   reachable set from a small initial box, reporting the verification time,
   partition count and verdict for each controller.

The robust student's smaller Lipschitz constant needs fewer partitions, so
its verification completes noticeably faster -- the paper's verifiability
claim.
"""

from __future__ import annotations

import argparse

from repro import (
    CocktailConfig,
    CocktailPipeline,
    DistillationConfig,
    MixingConfig,
    make_default_experts,
    make_system,
    set_global_seed,
)
from repro.systems.sets import Box
from repro.verification import verify_controller


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--grid", type=int, default=20, help="invariant-set grid resolution")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--engine",
        default="batched",
        choices=["batched", "scalar"],
        help="verification engine: the vectorized default or the historical scalar flow "
        "(identical results, different wall clock)",
    )
    args = parser.parse_args()

    set_global_seed(args.seed)
    system = make_system("vanderpol")
    experts = make_default_experts(system)

    distillation = DistillationConfig(
        epochs=30 if args.fast else 150,
        dataset_size=800 if args.fast else 3000,
        hidden_sizes=(16, 16),
        l2_weight=5e-3,
        adversarial_probability=0.5,
        seed=args.seed,
    )
    config = CocktailConfig(
        mixing=MixingConfig(epochs=3 if args.fast else 10, steps_per_epoch=512, seed=args.seed),
        distillation=distillation,
        seed=args.seed,
    )
    result = CocktailPipeline(system, experts, config).run()

    reach_box = Box([0.05, 0.05], [0.15, 0.15])
    for name, controller in (("kappa_star", result.student), ("kappaD", result.direct_student)):
        report = verify_controller(
            system,
            controller.network,
            name=name,
            target_error=0.5,
            degree=3,
            max_partitions=4096,
            reach_initial_box=reach_box,
            reach_steps=15,
            invariant_grid=None if args.fast else args.grid,
            engine=args.engine,
        )
        summary = report.summary()
        print(f"== {name} ==")
        print(f"  Lipschitz constant    : {summary['lipschitz']:.2f}")
        print(f"  Bernstein partitions  : {summary['partitions']}")
        print(f"  reachability verdict  : {summary['reach_status']} in {summary['reach_seconds']:.2f}s")
        if "invariant_fraction" in summary:
            print(
                f"  invariant set         : {100 * summary['invariant_fraction']:.1f}% of X "
                f"in {summary['invariant_seconds']:.1f}s"
            )
        print(f"  total verification    : {summary['total_seconds']:.2f}s")
        print()


if __name__ == "__main__":
    main()
