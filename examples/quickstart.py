"""Quickstart: run the full Cocktail pipeline on the Van der Pol oscillator.

This script mirrors Algorithm 1 of the paper end to end on a laptop-scale
budget (about half a minute):

1. build the plant and its two control experts;
2. learn the adaptive mixing policy with PPO (the mixed controller ``A_W``);
3. distil ``A_W`` into a single robust student network ``kappa*`` (and the
   direct-distillation baseline ``kappa_D``);
4. evaluate every controller on the paper's metrics and print a
   Table-I-style summary.

Run with ``python examples/quickstart.py``; pass ``--fast`` for a
seconds-scale smoke run or ``--paper`` for paper-scale budgets.
"""

from __future__ import annotations

import argparse

from repro import (
    CocktailConfig,
    CocktailPipeline,
    DistillationConfig,
    MixingConfig,
    evaluate_controllers,
    list_scenarios,
    make_default_experts,
    make_system,
    set_global_seed,
)
from repro.metrics.evaluation import metrics_to_table


def build_config(scale: str, seed: int) -> CocktailConfig:
    if scale == "fast":
        return CocktailConfig.fast(seed=seed)
    if scale == "paper":
        return CocktailConfig(
            mixing=MixingConfig(epochs=30, steps_per_epoch=2048, seed=seed),
            distillation=DistillationConfig(epochs=200, dataset_size=4000, seed=seed),
            seed=seed,
        )
    return CocktailConfig(
        mixing=MixingConfig(epochs=10, steps_per_epoch=1024, seed=seed),
        distillation=DistillationConfig(epochs=100, dataset_size=2500, seed=seed),
        seed=seed,
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--system", default="vanderpol", choices=list_scenarios())
    parser.add_argument("--fast", action="store_true", help="seconds-scale smoke run")
    parser.add_argument("--paper", action="store_true", help="paper-scale training budgets")
    parser.add_argument("--samples", type=int, default=200, help="Monte-Carlo evaluation samples")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    set_global_seed(args.seed)
    scale = "fast" if args.fast else ("paper" if args.paper else "default")
    print(f"== Cocktail quickstart on {args.system} ({scale} budget) ==")

    system = make_system(args.system)
    experts = make_default_experts(system)
    print(f"experts: {[expert.name for expert in experts]}")

    pipeline = CocktailPipeline(system, experts, build_config(scale, args.seed))
    result = pipeline.run()
    print("pipeline finished; distillation dataset size:", len(result.dataset))

    metrics = evaluate_controllers(system, result.controllers(), samples=args.samples, seed=args.seed)
    print()
    print(metrics_to_table(f"Table I style summary ({args.system})", metrics))
    print()
    print("kappa* (robust student) is the controller Cocktail deploys;")
    print("compare its row against the single experts and the direct distillation kappaD.")


if __name__ == "__main__":
    main()
