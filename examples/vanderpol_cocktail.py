"""Robustness study on the Van der Pol oscillator (the paper's Table II story).

Trains the Cocktail pipeline, then compares the robust student ``kappa*``
against the direct distillation ``kappa_D`` under:

* optimised FGSM adversarial attacks on the measured state, and
* uniform measurement noise,

both at 10-15 % of the state bound, exactly the regimes of Table II.  Also
prints the attacked control-signal energies (the Fig. 2 observation: the
robust student's control signal stays small and smooth under attack).
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    CocktailConfig,
    CocktailPipeline,
    DistillationConfig,
    MixingConfig,
    make_default_experts,
    make_system,
    set_global_seed,
)
from repro.metrics import evaluate_robustness
from repro.metrics.signals import compare_signal_traces
from repro.nn.lipschitz import network_lipschitz
from repro.utils.tables import ResultTable


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true")
    parser.add_argument("--samples", type=int, default=150)
    parser.add_argument("--fraction", type=float, default=0.1, help="perturbation budget as a state-bound fraction")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    set_global_seed(args.seed)
    system = make_system("vanderpol")
    experts = make_default_experts(system)

    if args.fast:
        config = CocktailConfig.fast(seed=args.seed)
    else:
        config = CocktailConfig(
            mixing=MixingConfig(epochs=12, steps_per_epoch=1024, seed=args.seed),
            distillation=DistillationConfig(
                epochs=150, dataset_size=3000, l2_weight=5e-3, adversarial_probability=0.5, seed=args.seed
            ),
            seed=args.seed,
        )
    result = CocktailPipeline(system, experts, config).run()

    students = {"kappaD": result.direct_student, "kappa_star": result.student}
    print("Lipschitz constants:")
    for name, controller in students.items():
        print(f"  {name}: L = {network_lipschitz(controller.network):.2f}")

    table = ResultTable("Table II style comparison (oscillator)", columns=list(students))
    for regime in ("attack", "noise"):
        rates, energies = {}, {}
        for name, controller in students.items():
            outcome = evaluate_robustness(
                system, controller, perturbation=regime, fraction=args.fraction, samples=args.samples, rng=args.seed
            )
            rates[name] = 100.0 * outcome.safe_rate
            energies[name] = outcome.mean_energy
        table.add_row(f"Sr {regime} (%)", rates)
        table.add_row(f"e {regime}", energies)
    print()
    print(table)

    print()
    print("Fig. 2 style check: attacked control-signal energy over one trajectory")
    traces = compare_signal_traces(system, students, attack_fraction=args.fraction, seed=args.seed)
    for name, trace in traces.items():
        print(f"  {name}: energy = {trace.energy:.1f}, max |u|/u_max = {np.max(np.abs(trace.normalized)):.2f}")


if __name__ == "__main__":
    main()
