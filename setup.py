"""Setuptools packaging for the Cocktail (DAC 2021) reproduction."""

from setuptools import find_packages, setup

setup(
    name="cocktail-repro",
    version="0.1.0",
    description=(
        "NumPy reproduction of 'Cocktail: Learn a Better Neural Network "
        "Controller from Multiple Experts via Adaptive Mixing and Robust "
        "Distillation' (DAC 2021)"
    ),
    long_description=(
        "Adaptive mixing of expert controllers via PPO, robust distillation "
        "into a small verifiable student network, batched Monte-Carlo "
        "evaluation, and Bernstein-polynomial verification -- all on NumPy."
    ),
    author="paper-repo-growth",
    license="MIT",
    packages=find_packages("src"),
    package_dir={"": "src"},
    python_requires=">=3.9",
    install_requires=["numpy>=1.22"],
    extras_require={"test": ["pytest", "pytest-benchmark"]},
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
    classifiers=[
        "Programming Language :: Python :: 3",
        "Intended Audience :: Science/Research",
        "Topic :: Scientific/Engineering :: Artificial Intelligence",
    ],
)
