# Developer entry points.  `test` wraps the tier-1 verification command used
# by CI and the roadmap; `test-fast` is the inner-loop subset (unit tests
# only: no scenario_smoke cells, no benchmarks -- run `test-cov` alongside it
# when touching the experiments run store); `test-cov` enforces a >=80%
# line-coverage floor on src/repro/experiments via tools/check_coverage.py
# (pytest-cov when installed, a stdlib settrace collector otherwise), with
# the shard/claim/merge packs in its test list so the coverage floor spans
# the distributed-coordination code too, and enforces the same floor on
# src/repro/telemetry and src/repro/jobs via their test packs;
# `shard-smoke` runs a real 2-shard matrix against one run directory and
# merges it back end-to-end; `watch-smoke` runs two telemetry-emitting
# shards, then exercises `runs watch --once` and `runs stats` against the
# shared event log; `serve-smoke` starts the job daemon, submits a matrix
# over HTTP with `repro submit --wait`, lists the jobs, watches the run,
# and shuts the daemon down;
# `scenario-smoke` runs the fast train->evaluate->verify cell for every
# registered scenario (also collected by `test` via the scenario_smoke
# pytest marker); `bench` regenerates the paper's tables/figures at the
# quick scale; `bench-json` runs the `repro bench` perf-regression
# harness and writes the machine-readable BENCH_<date>.json report
# (see docs/performance.md); `verify-bench` re-times the scalar-vs-batched verification
# engines and refreshes the committed CSV; `train-bench` does the same for
# the scalar-vs-vectorized training stages; `lint` is a fast syntax gate
# (no third-party linter is vendored into the image).

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH),)

.PHONY: test test-fast test-cov shard-smoke watch-smoke serve-smoke scenario-smoke bench bench-json verify-bench train-bench lint

test:
	$(PYTHON) -m pytest -x -q

test-fast:
	$(PYTHON) -m pytest -x -q -m "not scenario_smoke" tests

test-cov:
	$(PYTHON) tools/check_coverage.py --floor 80
	$(PYTHON) tools/check_coverage.py --floor 80 --target src/repro/telemetry \
		tests/test_telemetry_events.py tests/test_telemetry_emitter.py \
		tests/test_telemetry_aggregate.py
	$(PYTHON) tools/check_coverage.py --floor 80 --target src/repro/jobs \
		tests/test_jobs_messages.py tests/test_jobs_runner.py \
		tests/test_service_dedupe.py tests/test_service_faults.py
	$(PYTHON) tools/check_coverage.py --floor 80 --target src/repro/perf \
		tests/test_bench_smoke.py
	$(PYTHON) tools/check_coverage.py --floor 80 --target src/repro/utils/buffers.py \
		tests/test_utils_buffers.py
	$(PYTHON) tools/check_coverage.py --floor 80 --target src/repro/utils/dtypes.py \
		tests/test_float32_mode.py
	$(PYTHON) tools/check_coverage.py --floor 80 --target src/repro/utils/profiling.py \
		tests/test_utils_buffers.py

SHARD_SMOKE_DIR ?= runs/shard-smoke
shard-smoke:
	rm -rf $(SHARD_SMOKE_DIR)
	$(PYTHON) -m repro scenarios run --scenario pendulum --scenario cartpole \
		--no-train --no-verify --samples 4 --run-dir $(SHARD_SMOKE_DIR) --shard 1/2
	$(PYTHON) -m repro scenarios run --scenario pendulum --scenario cartpole \
		--no-train --no-verify --samples 4 --run-dir $(SHARD_SMOKE_DIR) --shard 2/2
	$(PYTHON) -m repro runs merge --run-dir $(SHARD_SMOKE_DIR) --csv $(SHARD_SMOKE_DIR)/matrix.csv

WATCH_SMOKE_DIR ?= runs/watch-smoke
watch-smoke:
	rm -rf $(WATCH_SMOKE_DIR)
	$(PYTHON) -m repro scenarios run --scenario pendulum --scenario cartpole \
		--no-train --no-verify --samples 4 --run-dir $(WATCH_SMOKE_DIR) --shard 1/2
	$(PYTHON) -m repro scenarios run --scenario pendulum --scenario cartpole \
		--no-train --no-verify --samples 4 --run-dir $(WATCH_SMOKE_DIR) --shard 2/2
	$(PYTHON) -m repro runs watch --run-dir $(WATCH_SMOKE_DIR) --once
	$(PYTHON) -m repro runs stats --run-dir $(WATCH_SMOKE_DIR)

SERVE_SMOKE_DIR ?= runs/serve-smoke
serve-smoke:
	rm -rf $(SERVE_SMOKE_DIR)
	$(PYTHON) -m repro serve --run-dir $(SERVE_SMOKE_DIR) & \
	trap 'kill $$! 2>/dev/null' EXIT; \
	for i in $$(seq 1 50); do \
		test -f $(SERVE_SMOKE_DIR)/service/server.json && break; sleep 0.1; done; \
	test -f $(SERVE_SMOKE_DIR)/service/server.json; \
	$(PYTHON) -m repro submit matrix --set scenarios=pendulum --set samples=4 \
		--set train=false --set verify=false \
		--run-dir $(SERVE_SMOKE_DIR) --wait && \
	$(PYTHON) -m repro jobs list --run-dir $(SERVE_SMOKE_DIR) && \
	$(PYTHON) -m repro runs watch --run-dir $(SERVE_SMOKE_DIR) --once && \
	$(PYTHON) -m repro jobs shutdown --run-dir $(SERVE_SMOKE_DIR) && \
	wait $$!

scenario-smoke:
	REPRO_SCALE=quick $(PYTHON) -m pytest -q -m scenario_smoke tests

bench:
	REPRO_SCALE=$${REPRO_SCALE:-quick} $(PYTHON) -m pytest -q benchmarks

BENCH_JSON_DIR ?= runs/bench
bench-json:
	$(PYTHON) -m repro bench --output $(BENCH_JSON_DIR) --json

verify-bench:
	REPRO_RECORD=1 $(PYTHON) -m pytest -q -s benchmarks/test_verification_speed.py

train-bench:
	REPRO_RECORD=1 $(PYTHON) -m pytest -q -s benchmarks/test_training_speed.py

lint:
	$(PYTHON) -m compileall -q src tests benchmarks examples
